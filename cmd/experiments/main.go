// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints paper-vs-measured rows — the data behind
// EXPERIMENTS.md. The -quick flag shrinks the expensive real-solver
// experiments (Fig. 7 buffer sweep, Fig. 9 reactive MD).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	qmd "ldcdft"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	quick := flag.Bool("quick", false, "smaller sweeps for the expensive experiments")
	flag.Parse()
	start := time.Now()

	section("Fig. 5 — weak scaling (machine model)")
	for _, pt := range qmd.Fig5WeakScaling() {
		fmt.Printf("  P=%7d  atoms=%11d  T=%8.1f s/step  eff=%.4f\n",
			pt.Cores, pt.Atoms, pt.WallClock, pt.Efficiency)
	}
	fmt.Println("  paper: parallel efficiency 0.984 on 786,432 cores")

	section("Fig. 6 — strong scaling (machine model)")
	for _, pt := range qmd.Fig6StrongScaling() {
		fmt.Printf("  P=%7d  T=%7.2f s/step  eff=%.4f\n", pt.Cores, pt.WallClock, pt.Efficiency)
	}
	fmt.Println("  paper: speedup 12.85 / efficiency 0.803 at 16× cores")

	section("Fig. 7 — energy convergence vs buffer (REAL solver, scaled system)")
	fig7, err := qmd.Fig7BufferConvergence(*quick)
	if err != nil {
		log.Fatalf("Fig7: %v", err)
	}
	fmt.Printf("  reference energy (single domain): %.6f Ha, %d atoms\n", fig7.RefEnergy, fig7.Atoms)
	fmt.Println("  b(pts)  b(Bohr)   LDC err/atom    DC err/atom")
	for _, p := range fig7.Points {
		fmt.Printf("  %4d   %6.3f    %.3e      %.3e\n", p.BufN, p.BufferBohr, p.LDCErr, p.DCErr)
	}
	fmt.Println("  paper: LDC converges within 1e-3 Ha/atom above b = 4 a.u., much faster than DC")

	section("§5.2 — LDC-over-DC speedups and O(N³) crossover")
	fmt.Println("  tolerance    b_DC     b_LDC    speedup(nu=2)  speedup(nu=3)   [paper CdSe buffers]")
	for _, r := range qmd.Sec52PaperSpeedups() {
		fmt.Printf("  %8.0e   %6.2f   %6.2f     %6.2f        %6.2f\n",
			r.TolHa, r.BufDC, r.BufLDC, r.SpeedupNu2, r.SpeedupNu3)
	}
	if len(fig7.Points) >= 2 {
		h := fig7.Points[0].BufferBohr / float64(fig7.Points[0].BufN)
		coreLen := 12 * h // 2×2×2 split of the 24-point grid
		// Pick tolerances inside the measured error range so the buffer
		// interpolation is meaningful at this scaled-down system size.
		first := fig7.Points[0]
		last := fig7.Points[len(fig7.Points)-1]
		tols := []float64{
			math.Sqrt(first.DCErr * last.DCErr),
			last.DCErr * 1.2,
		}
		fmt.Printf("  measured from OUR Fig. 7 curves (core l = %.2f Bohr):\n", coreLen)
		for _, r := range qmd.MeasuredSpeedups(fig7, coreLen, tols) {
			fmt.Printf("  %8.1e   %6.2f   %6.2f     %6.2f        %6.2f\n",
				r.TolHa, r.BufDC, r.BufLDC, r.SpeedupNu2, r.SpeedupNu3)
		}
	}
	if cx, err := qmd.Sec52Crossover(); err == nil {
		fmt.Printf("  crossover: L = %.2f a.u. → %.0f atoms (paper: 28.56 a.u., 125 atoms); 1.5× buffer → %.0f (paper: 422)\n",
			cx.CrossoverL, cx.CrossoverAtoms, cx.Stringent)
	}

	section("Table 1 — FLOP/s vs threads per core (model)")
	cells, err := qmd.Table1ThreadScaling()
	if err != nil {
		log.Fatalf("Table1: %v", err)
	}
	fmt.Println("  nodes  threads   GFLOP/s   pct-peak   [paper %]")
	paper := map[[2]int]float64{{4, 1}: 28.8, {4, 2}: 41.9, {4, 4}: 54.3,
		{8, 1}: 26.4, {8, 2}: 34.4, {8, 4}: 45.6, {16, 1}: 24.6, {16, 2}: 31.0, {16, 4}: 46.8}
	for _, c := range cells {
		fmt.Printf("  %4d   %4d     %8.0f   %5.1f    %5.1f\n",
			c.Nodes, c.ThreadsPerCore, c.GFlops, 100*c.PctPeak, paper[[2]int{c.Nodes, c.ThreadsPerCore}])
	}

	section("Table 2 — FLOP/s at rack scale (model)")
	fmt.Println("  racks    cores      TFLOP/s   pct-peak    paper-TF  paper-%")
	for _, r := range qmd.Table2RackFlops() {
		fmt.Printf("  %4d   %7d   %9.1f   %5.2f    %8.1f   %5.2f\n",
			r.Racks, r.Cores, r.TFlops, r.PctPeak, r.PaperTF, r.PaperPct)
	}

	section("§2 — time-to-solution comparison")
	for _, r := range qmd.Sec2TimeToSolution() {
		fmt.Printf("  %-55s %12.1f atom·iter/s\n", r.Code, r.Speed)
	}
	fmt.Println("  paper: 5,800× over the O(N³) baseline, 62× over the O(N) baseline")

	steps := 6000
	pairs9a := 20
	sizes := []int{10, 20, 40}
	if *quick {
		steps = 1500
		pairs9a = 10
		sizes = []int{8, 16}
	}
	section("Fig. 9(a) — Arrhenius plot of H₂ production (REAL reactive MD, scaled)")
	arr, err := qmd.Fig9aArrhenius(pairs9a, steps, 3)
	if err != nil {
		log.Fatalf("Fig9a: %v", err)
	}
	for i, tk := range arr.TempsK {
		fmt.Printf("  T=%5.0f K: rate %.3g /s/pair, pH %.2f → %.2f\n",
			tk, arr.Rates[i], arr.PHStart[i], arr.PHEnd[i])
	}
	fmt.Printf("  Arrhenius fit: Ea = %.3f eV (paper: 0.068 eV), prefactor %.3g /s\n", arr.EaEV, arr.Prefactor)

	section("Fig. 9(b) — rate per surface atom vs particle size (REAL reactive MD, scaled)")
	// An early measurement window avoids small-particle saturation (the
	// limited water-per-metal inventory caps total H2 for tiny clusters).
	steps9b := steps * 2 / 5
	rows, err := qmd.Fig9bSizeScaling(sizes, steps9b, 4)
	if err != nil {
		log.Fatalf("Fig9b: %v", err)
	}
	for _, r := range rows {
		fmt.Printf("  Li%dAl%d: %5d atoms, Nsurf=%4d, H2=%3d, rate/Nsurf = %.3g /s\n",
			r.Pairs, r.Pairs, r.Atoms, r.SurfaceAtoms, r.H2Produced, r.RatePerSurf)
	}
	fmt.Println("  paper: normalized rate constant within error bars across sizes")

	section("§5.5 — verification: LDC-DFT vs conventional O(N³) DFT (REAL solvers)")
	ver, err := qmd.Sec55Verification()
	if err != nil {
		log.Fatalf("Sec55: %v", err)
	}
	fmt.Printf("  %d atoms: E/atom LDC %.6f vs conventional %.6f (Δ %.2e Ha/atom)\n",
		ver.Atoms, ver.LDCEnergyPA, ver.ConvEnergyPA, ver.DiffPA)
	fmt.Printf("  force RMS: LDC %.4f vs conventional %.4f Ha/Bohr (max Δ %.4f)\n",
		ver.LDCForceRMS, ver.ConvForceRMS, ver.MaxForceDiff)
	fmt.Printf("  quantity of interest identical: %v (census %d vs %d)\n",
		ver.QuantityLDC == ver.QuantityConv, ver.QuantityLDC, ver.QuantityConv)

	section("§4.2 — collective I/O group-size study (model) and Hilbert compression (real)")
	sweep, opt := qmd.IOGroupSizeSweep()
	for _, p := range sweep {
		if p.GroupSize >= 16 && p.GroupSize <= 4096 {
			fmt.Printf("  group=%5d  write=%7.2f s\n", p.GroupSize, p.WriteSec)
		}
	}
	fmt.Printf("  optimal group size: %d (paper: 192)\n", opt)
	if ratio, err := qmd.CompressionDemo(4, 12); err == nil {
		fmt.Printf("  Hilbert-curve snapshot compression (512-atom SiC): %.1f×\n", ratio)
	}

	fmt.Printf("\nall experiments done in %s\n", time.Since(start).Round(time.Second))
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
