// Command qmdd is the QMD job-serving daemon: it exposes the
// internal/serve HTTP API (submit, status, cancel, SSE event streams,
// health, Prometheus metrics) over a durable job store, runs
// trajectories on a bounded worker pool with admission control, and
// drains gracefully on SIGTERM/SIGINT — checkpointing running jobs so a
// restarted daemon resumes them where they stopped.
//
// Jobs share a content-addressed SCF warm-start cache (qmdd_cache_*
// on /metrics): resubmitting an identical structure skips its SCF
// solves entirely, and near-duplicate structures start from the nearest
// cached density. Disable with -cache-bytes 0.
//
// Usage:
//
//	qmdd -addr 127.0.0.1:8432 -data ./qmdd-data -workers 2 -queue-cap 16
//
// Submitting a job:
//
//	curl -fsS -X POST localhost:8432/v1/jobs -d @job.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ldcdft/internal/cache"
	"ldcdft/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8432", "listen address (host:port; port 0 picks a free port)")
	data := flag.String("data", "qmdd-data", "durable job store directory")
	workers := flag.Int("workers", 2, "concurrent trajectory workers")
	queueCap := flag.Int("queue-cap", 16, "pending-queue capacity (excess submissions get 429)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for checkpointing running jobs")
	cacheDir := flag.String("cache-dir", "", "SCF warm-start cache directory (default <data>/cache)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "warm-start cache byte budget (0 disables the cache)")
	cacheTol := flag.Float64("cache-tol", 0.25, "near-hit tolerance: max per-atom displacement (Bohr) at which a cached density seeds SCF")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("qmdd: ")
	if flag.NArg() != 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *cacheBytes < 0 {
		log.Fatalf("-cache-bytes must be non-negative, got %d", *cacheBytes)
	}
	if *cacheTol < 0 {
		log.Fatalf("-cache-tol must be non-negative, got %g", *cacheTol)
	}
	if err := run(*addr, *data, *workers, *queueCap, *drainTimeout,
		*cacheDir, *cacheBytes, *cacheTol); err != nil {
		log.Fatal(err)
	}
}

func run(addr, data string, workers, queueCap int, drainTimeout time.Duration,
	cacheDir string, cacheBytes int64, cacheTol float64) error {
	var wsc *cache.Cache
	if cacheBytes > 0 {
		if cacheDir == "" {
			cacheDir = filepath.Join(data, "cache")
		}
		var err error
		wsc, err = cache.Open(cache.Options{Dir: cacheDir, MaxBytes: cacheBytes, NearTol: cacheTol})
		if err != nil {
			return err
		}
		st := wsc.Stats()
		log.Printf("warm-start cache at %s (budget %d bytes, near tolerance %g Bohr, %d entries recovered)",
			cacheDir, cacheBytes, cacheTol, st.Entries)
	} else {
		log.Printf("warm-start cache disabled")
	}
	mgr, err := serve.NewManager(serve.Config{
		DataDir:  data,
		Workers:  workers,
		QueueCap: queueCap,
		Cache:    wsc,
		Logf:     log.Printf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address line is the daemon's readiness signal —
	// scripts (and the smoke test) parse the port out of it.
	log.Printf("listening on %s (data %s, %d workers, queue capacity %d)",
		ln.Addr(), data, workers, queueCap)

	srv := &http.Server{Handler: mgr.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	log.Printf("signal received; draining (budget %s)", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the manager first: it checkpoints running jobs and closes
	// their event streams, which lets in-flight SSE handlers finish so
	// the HTTP shutdown below can complete.
	if err := mgr.Shutdown(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("shutdown complete")
	return nil
}
