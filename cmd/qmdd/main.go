// Command qmdd is the QMD job-serving daemon: it exposes the
// internal/serve HTTP API (submit, status, cancel, SSE event streams,
// health, Prometheus metrics) over a durable job store, runs
// trajectories on a bounded worker pool with admission control, and
// drains gracefully on SIGTERM/SIGINT — checkpointing running jobs so a
// restarted daemon resumes them where they stopped.
//
// Usage:
//
//	qmdd -addr 127.0.0.1:8432 -data ./qmdd-data -workers 2 -queue-cap 16
//
// Submitting a job:
//
//	curl -fsS -X POST localhost:8432/v1/jobs -d @job.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ldcdft/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8432", "listen address (host:port; port 0 picks a free port)")
	data := flag.String("data", "qmdd-data", "durable job store directory")
	workers := flag.Int("workers", 2, "concurrent trajectory workers")
	queueCap := flag.Int("queue-cap", 16, "pending-queue capacity (excess submissions get 429)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for checkpointing running jobs")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("qmdd: ")
	if flag.NArg() != 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if err := run(*addr, *data, *workers, *queueCap, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(addr, data string, workers, queueCap int, drainTimeout time.Duration) error {
	mgr, err := serve.NewManager(serve.Config{
		DataDir:  data,
		Workers:  workers,
		QueueCap: queueCap,
		Logf:     log.Printf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address line is the daemon's readiness signal —
	// scripts (and the smoke test) parse the port out of it.
	log.Printf("listening on %s (data %s, %d workers, queue capacity %d)",
		ln.Addr(), data, workers, queueCap)

	srv := &http.Server{Handler: mgr.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	log.Printf("signal received; draining (budget %s)", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the manager first: it checkpoints running jobs and closes
	// their event streams, which lets in-flight SSE handlers finish so
	// the HTTP shutdown below can complete.
	if err := mgr.Shutdown(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("shutdown complete")
	return nil
}
