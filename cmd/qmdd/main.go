// Command qmdd is the QMD job-serving daemon. It runs in one of three
// modes:
//
//   - standalone (default): the single-node daemon — the internal/serve
//     HTTP API (submit, status, cancel, SSE event streams, health,
//     Prometheus metrics) over a durable job store, trajectories on a
//     bounded in-process worker pool with admission control.
//   - coordinator: the same public API, but no local trajectory pool —
//     worker nodes lease jobs over the /v1/lease API, heartbeat them,
//     upload checkpoints at step boundaries, and report completion.
//     A worker that crashes or partitions loses its lease after
//     -lease-ttl; the job is requeued and resumed bit-for-bit from its
//     last uploaded checkpoint by the next node, and the old worker's
//     late calls are fenced off by the lease epoch.
//   - worker: a trajectory node — leases jobs from -coordinator, runs
//     them with -slots-way concurrency, and drains cooperatively on
//     SIGTERM (final checkpoint uploaded, lease released).
//
// All modes drain gracefully on SIGTERM/SIGINT.
//
// Jobs share a content-addressed SCF warm-start cache (qmdd_cache_*
// on /metrics): resubmitting an identical structure skips its SCF
// solves entirely, and near-duplicate structures start from the nearest
// cached density. Disable with -cache-bytes 0.
//
// Usage:
//
//	qmdd -addr 127.0.0.1:8432 -data ./qmdd-data -workers 2 -queue-cap 16
//	qmdd -mode coordinator -addr :8432 -data ./qmdd-data -lease-ttl 15s
//	qmdd -mode worker -coordinator http://head:8432 -slots 2 -data ./scratch
//
// Submitting a job:
//
//	curl -fsS -X POST localhost:8432/v1/jobs -d @job.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ldcdft/internal/cache"
	"ldcdft/internal/serve"
)

func main() {
	mode := flag.String("mode", "standalone", "standalone | coordinator | worker")
	addr := flag.String("addr", "127.0.0.1:8432", "listen address (host:port; port 0 picks a free port)")
	data := flag.String("data", "qmdd-data", "durable job store directory (worker mode: local scratch root)")
	workers := flag.Int("workers", 2, "concurrent trajectory workers (standalone mode)")
	queueCap := flag.Int("queue-cap", 16, "pending-queue capacity (excess submissions get 429)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for checkpointing running jobs")
	cacheDir := flag.String("cache-dir", "", "SCF warm-start cache directory (default <data>/cache)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "warm-start cache byte budget (0 disables the cache)")
	cacheTol := flag.Float64("cache-tol", 0.25, "near-hit tolerance: max per-atom displacement (Bohr) at which a cached density seeds SCF")
	coordinator := flag.String("coordinator", "http://127.0.0.1:8432", "coordinator base URL (worker mode)")
	name := flag.String("name", "", "worker node name (worker mode; default host:pid)")
	slots := flag.Int("slots", 2, "concurrent leased trajectories (worker mode)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "job lease TTL: a worker silent this long loses its jobs (coordinator mode)")
	retainAge := flag.Duration("retain-age", 0, "prune terminal jobs finished longer ago than this (0 keeps forever)")
	retainMax := flag.Int("retain-max-jobs", 0, "keep at most this many terminal jobs, oldest pruned first (0 keeps all)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("qmdd: ")
	if flag.NArg() != 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *cacheBytes < 0 {
		log.Fatalf("-cache-bytes must be non-negative, got %d", *cacheBytes)
	}
	if *cacheTol < 0 {
		log.Fatalf("-cache-tol must be non-negative, got %g", *cacheTol)
	}
	if *retainAge < 0 || *retainMax < 0 {
		log.Fatalf("-retain-age and -retain-max-jobs must be non-negative")
	}
	var err error
	switch *mode {
	case "standalone", "coordinator":
		err = runServe(*mode == "coordinator", *addr, *data, *workers, *queueCap,
			*drainTimeout, *leaseTTL, *cacheDir, *cacheBytes, *cacheTol,
			*retainAge, *retainMax)
	case "worker":
		err = runWorker(*coordinator, *name, *data, *slots, *cacheDir, *cacheBytes, *cacheTol)
	default:
		err = fmt.Errorf("unknown -mode %q (want standalone, coordinator, or worker)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// openCache opens the warm-start cache per the -cache-* flags; nil (and
// no error) when disabled.
func openCache(data, cacheDir string, cacheBytes int64, cacheTol float64) (*cache.Cache, error) {
	if cacheBytes <= 0 {
		log.Printf("warm-start cache disabled")
		return nil, nil
	}
	if cacheDir == "" {
		cacheDir = filepath.Join(data, "cache")
	}
	wsc, err := cache.Open(cache.Options{Dir: cacheDir, MaxBytes: cacheBytes, NearTol: cacheTol})
	if err != nil {
		return nil, err
	}
	st := wsc.Stats()
	log.Printf("warm-start cache at %s (budget %d bytes, near tolerance %g Bohr, %d entries recovered)",
		cacheDir, cacheBytes, cacheTol, st.Entries)
	return wsc, nil
}

// runServe hosts the HTTP API in standalone or coordinator mode.
func runServe(distributed bool, addr, data string, workers, queueCap int,
	drainTimeout, leaseTTL time.Duration, cacheDir string, cacheBytes int64, cacheTol float64,
	retainAge time.Duration, retainMax int) error {
	wsc, err := openCache(data, cacheDir, cacheBytes, cacheTol)
	if err != nil {
		return err
	}
	mgr, err := serve.NewManager(serve.Config{
		DataDir:     data,
		Workers:     workers,
		QueueCap:    queueCap,
		Cache:       wsc,
		Logf:        log.Printf,
		Distributed: distributed,
		LeaseTTL:    leaseTTL,

		RetainAge:     retainAge,
		RetainMaxJobs: retainMax,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address line is the daemon's readiness signal —
	// scripts (and the smoke tests) parse the port out of it.
	if distributed {
		log.Printf("listening on %s (coordinator, data %s, queue capacity %d, lease TTL %s)",
			ln.Addr(), data, queueCap, leaseTTL)
	} else {
		log.Printf("listening on %s (data %s, %d workers, queue capacity %d)",
			ln.Addr(), data, workers, queueCap)
	}

	srv := &http.Server{Handler: mgr.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	log.Printf("signal received; draining (budget %s)", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the manager first: it checkpoints running jobs and closes
	// their event streams, which lets in-flight SSE handlers finish so
	// the HTTP shutdown below can complete.
	if err := mgr.Shutdown(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("shutdown complete")
	return nil
}

// runWorker runs a trajectory node against a coordinator until
// SIGTERM/SIGINT, then drains: each in-flight job uploads a final
// checkpoint and releases its lease so the coordinator requeues it
// immediately.
func runWorker(coordinator, name, data string, slots int,
	cacheDir string, cacheBytes int64, cacheTol float64) error {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	wsc, err := openCache(data, cacheDir, cacheBytes, cacheTol)
	if err != nil {
		return err
	}
	w, err := serve.NewWorker(serve.WorkerConfig{
		Coordinator: coordinator,
		Name:        name,
		Slots:       slots,
		WorkDir:     filepath.Join(data, "scratch"),
		Cache:       wsc,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	// Readiness line, the worker-mode analogue of "listening on".
	log.Printf("worker %s leasing from %s (%d slots, scratch %s)", name, coordinator, slots, data)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	<-ctx.Done()
	stop()
	log.Printf("signal received; draining (releasing leases)")
	<-done
	log.Printf("shutdown complete")
	return nil
}
