package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ldcdft/internal/waitfor"
)

// TestQMDDSmoke exercises the built daemon binary end to end: start on
// a random port, submit a tiny 2-atom job over HTTP and poll it to
// completion, resubmit it and verify the warm-start cache serves it
// without re-entering the SCF loop, cancel a third job mid-flight,
// check the /metrics counters, and shut the daemon down with SIGTERM.
// `make serve-smoke` runs exactly this test.
func TestQMDDSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "qmdd")
	if out, err := exec.Command("go", "build", "-o", bin, "ldcdft/cmd/qmdd").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	logs := &syncBuffer{}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", filepath.Join(dir, "data"), "-workers", "1", "-queue-cap", "4")
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Readiness: the daemon's first log line carries the resolved port.
	listenRe := regexp.MustCompile(`listening on (\S+) `)
	var base string
	if !waitfor.Until(30*time.Second, func() bool {
		m := listenRe.FindStringSubmatch(logs.String())
		if m == nil {
			return false
		}
		base = "http://" + m[1]
		return true
	}) {
		t.Fatalf("no listen line in daemon output:\n%s", logs.String())
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}

	spec := func(name string, steps int) string {
		return fmt.Sprintf(`{
			"name": %q,
			"cell_l": 8,
			"atoms": [
				{"species": "H", "position": [3.3, 4, 4]},
				{"species": "H", "position": [4.7, 4, 4]}
			],
			"config": {"grid_n": 12, "domains_per_axis": 1, "buf_n": 0, "ecut": 4.0,
				"kt": 0.05, "mix_alpha": 0.3, "anderson": true, "max_scf": 80,
				"eigen_iters": 4, "seed": 1, "energy_tol": 1e-7, "density_tol": 1e-6},
			"steps": %d
		}`, name, steps)
	}
	submit := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st map[string]any
		json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}
	status := func(id string) map[string]any {
		t.Helper()
		code, body := get("/v1/jobs/" + id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d %s", id, code, body)
		}
		var st map[string]any
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	waitFor := func(id string, cond func(map[string]any) bool, what string) map[string]any {
		t.Helper()
		var st map[string]any
		if !waitfor.Until(2*time.Minute, func() bool {
			st = status(id)
			return cond(st)
		}) {
			t.Fatalf("timed out waiting for %s of %s: %v", what, id, st)
		}
		return st
	}

	// First job completes with per-step energies.
	code, st1 := submit(spec("smoke", 2))
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %v", code, st1)
	}
	id1 := st1["id"].(string)
	fin := waitFor(id1, func(st map[string]any) bool { return st["status"] == "completed" }, "completion")
	if es, ok := fin["energies_ha"].([]any); !ok || len(es) != 2 {
		t.Fatalf("completed job energies: %v", fin["energies_ha"])
	}

	// An identical resubmission is served from the warm-start cache: its
	// trajectory is bitwise the first job's, and the daemon never enters
	// the SCF loop again (the scf/domain-solves phase call counter is
	// frozen between the two completions).
	phaseCallsRe := regexp.MustCompile(`qmd_phase_calls_total\{phase="scf/domain-solves"\} (\S+)`)
	phaseCalls := func() string {
		t.Helper()
		_, metrics := get("/metrics")
		m := phaseCallsRe.FindStringSubmatch(metrics)
		if m == nil {
			t.Fatalf("metrics missing scf/domain-solves phase calls:\n%s", metrics)
		}
		return m[1]
	}
	callsAfterCold := phaseCalls()
	code, stHit := submit(spec("smoke-again", 2))
	if code != http.StatusCreated {
		t.Fatalf("resubmit: %d %v", code, stHit)
	}
	finHit := waitFor(stHit["id"].(string),
		func(st map[string]any) bool { return st["status"] == "completed" }, "cached completion")
	if got := phaseCalls(); got != callsAfterCold {
		t.Fatalf("cached resubmission entered the SCF loop: domain-solves calls %s → %s", callsAfterCold, got)
	}
	hitEnergies, ok := finHit["energies_ha"].([]any)
	if !ok || len(hitEnergies) != 2 {
		t.Fatalf("cached job energies: %v", finHit["energies_ha"])
	}
	for i, e := range fin["energies_ha"].([]any) {
		if hitEnergies[i] != e {
			t.Fatalf("cached step %d energy %v != original %v", i+1, hitEnergies[i], e)
		}
	}
	_, metrics := get("/metrics")
	// 2 MD steps = 3 force evaluations (initial + one per step): the cold
	// job missed 3 times, the identical rerun hit 3 times.
	for _, frag := range []string{
		"qmdd_cache_hits_total 3",
		"qmdd_cache_misses_total 3",
		"qmdd_cache_near_hits_total 0",
	} {
		if !strings.Contains(metrics, frag) {
			t.Fatalf("cache metrics missing %q:\n%s", frag, metrics)
		}
	}
	savedRe := regexp.MustCompile(`qmdd_cache_scf_iterations_saved_total (\d+)`)
	if m := savedRe.FindStringSubmatch(metrics); m == nil || m[1] == "0" {
		t.Fatalf("no SCF iterations saved after an exact-hit rerun:\n%s", metrics)
	}

	// Third job is cancelled mid-flight.
	code, st2 := submit(spec("cancelme", 50))
	if code != http.StatusCreated {
		t.Fatalf("submit 2: %d %v", code, st2)
	}
	id2 := st2["id"].(string)
	waitFor(id2, func(st map[string]any) bool {
		return st["status"] == "running" && st["steps_done"].(float64) >= 1
	}, "first step")
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id2, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	waitFor(id2, func(st map[string]any) bool { return st["status"] == "cancelled" }, "cancellation")

	// Metrics reflect two completed jobs and one cancelled job.
	_, metrics = get("/metrics")
	for _, frag := range []string{
		"qmdd_jobs_submitted_total 3",
		"qmdd_jobs_completed_total 2",
		"qmdd_jobs_cancelled_total 1",
		"qmdd_jobs_running 0",
		"qmd_phase_busy_seconds_total{phase=\"scf/domain-solves\"}",
	} {
		if !strings.Contains(metrics, frag) {
			t.Fatalf("metrics missing %q:\n%s", frag, metrics)
		}
	}

	// SIGTERM drains and exits cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, logs.String())
		}
	case <-time.After(time.Minute):
		cmd.Process.Kill()
		t.Fatalf("daemon did not exit after SIGTERM\n%s", logs.String())
	}
	if out := logs.String(); !strings.Contains(out, "shutdown complete") {
		t.Fatalf("daemon log missing graceful shutdown:\n%s", out)
	}
}

// syncBuffer is a goroutine-safe log sink for the daemon's stderr.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
