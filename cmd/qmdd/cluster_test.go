package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"ldcdft/internal/serve"
	"ldcdft/internal/waitfor"
)

// TestClusterSmoke is the fault-injecting multi-node gate
// (`make cluster-smoke`): one coordinator and two worker nodes, all
// separate OS processes. A job array goes in through the qmdctl CLI;
// the worker holding the longest job is SIGKILLed mid-trajectory; the
// coordinator must expire its lease, requeue the orphaned job, and the
// surviving node must resume it from the last uploaded checkpoint and
// finish it — with energies bitwise identical to an uninterrupted
// standalone run of the same spec. Finally a zombie call with the dead
// worker's lease epoch must be fenced off with 409.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a three-process cluster")
	}
	dir := t.TempDir()
	qmdd := filepath.Join(dir, "qmdd")
	qmdctl := filepath.Join(dir, "qmdctl")
	if out, err := exec.Command("go", "build", "-o", qmdd, "ldcdft/cmd/qmdd").CombinedOutput(); err != nil {
		t.Fatalf("build qmdd: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", qmdctl, "ldcdft/cmd/qmdctl").CombinedOutput(); err != nil {
		t.Fatalf("build qmdctl: %v\n%s", err, out)
	}

	// The SCF warm-start cache is off everywhere so every energy in the
	// comparison comes from a real solve.
	coordLogs := &syncBuffer{}
	coord := exec.Command(qmdd, "-mode", "coordinator", "-addr", "127.0.0.1:0",
		"-data", filepath.Join(dir, "coord"), "-lease-ttl", "2s", "-cache-bytes", "0")
	coord.Stderr = coordLogs
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	listenRe := regexp.MustCompile(`listening on (\S+) `)
	var base string
	if !waitfor.Until(30*time.Second, func() bool {
		m := listenRe.FindStringSubmatch(coordLogs.String())
		if m == nil {
			return false
		}
		base = "http://" + m[1]
		return true
	}) {
		t.Fatalf("no listen line in coordinator output:\n%s", coordLogs.String())
	}

	startNode := func(name string) (*exec.Cmd, *syncBuffer) {
		t.Helper()
		logs := &syncBuffer{}
		cmd := exec.Command(qmdd, "-mode", "worker", "-coordinator", base, "-name", name,
			"-slots", "1", "-data", filepath.Join(dir, name), "-cache-bytes", "0")
		cmd.Stderr = logs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		if !waitfor.Until(30*time.Second, func() bool {
			return strings.Contains(logs.String(), "worker "+name+" leasing from")
		}) {
			t.Fatalf("worker %s never became ready:\n%s", name, logs.String())
		}
		return cmd, logs
	}
	node1, _ := startNode("node1")
	defer node1.Process.Kill()
	node2, _ := startNode("node2")
	defer node2.Process.Kill()
	nodes := map[string]*exec.Cmd{"node1": node1, "node2": node2}

	// Job array: the victim is the costliest job (most steps on the same
	// grid), so the cost-aware pick leases it first; the fillers keep the
	// second node busy. CheckpointEvery 1 gives the victim a checkpoint
	// upload at every step boundary.
	spec := func(name string, steps int) string {
		return fmt.Sprintf(`{
			"name": %q,
			"cell_l": 8,
			"atoms": [
				{"species": "H", "position": [3.3, 4, 4]},
				{"species": "H", "position": [4.7, 4, 4]}
			],
			"config": {"grid_n": 12, "domains_per_axis": 1, "buf_n": 0, "ecut": 4.0,
				"kt": 0.05, "mix_alpha": 0.3, "anderson": true, "max_scf": 80,
				"eigen_iters": 4, "seed": 1, "energy_tol": 1e-7, "density_tol": 1e-6},
			"steps": %d,
			"checkpoint_every": 1
		}`, name, steps)
	}
	const victimSteps = 8
	batch := filepath.Join(dir, "jobs.json")
	array := fmt.Sprintf(`{"jobs":[%s,%s,%s]}`,
		spec("victim", victimSteps), spec("filler-1", 2), spec("filler-2", 2))
	if err := os.WriteFile(batch, []byte(array), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(qmdctl, "-addr", base, "submit", batch).CombinedOutput()
	if err != nil {
		t.Fatalf("qmdctl submit: %v\n%s", err, out)
	}
	ids := strings.Fields(string(out))
	if len(ids) != 3 {
		t.Fatalf("qmdctl submit printed %q, want three job IDs", out)
	}
	victimID := ids[0]

	getState := func(id string) serve.JobState {
		t.Helper()
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st serve.JobState
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Wait until the victim is mid-trajectory with at least one
	// checkpoint uploaded (the upload at step k carries step k-1), then
	// SIGKILL its node — no drain, no release, no final upload.
	var victim serve.JobState
	if !waitfor.Until(2*time.Minute, func() bool {
		victim = getState(victimID)
		return victim.Status == serve.StatusRunning && victim.StepsDone >= 2
	}) {
		t.Fatalf("victim never reached step 2: %+v", victim)
	}
	doomed := nodes[victim.Worker]
	if doomed == nil {
		t.Fatalf("victim leased to unknown worker %q", victim.Worker)
	}
	t.Logf("killing %s (victim at step %d, epoch %d)", victim.Worker, victim.StepsDone, victim.LeaseEpoch)
	if err := doomed.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	doomed.Wait()
	victimEpoch := victim.LeaseEpoch
	survivor := "node1"
	if victim.Worker == "node1" {
		survivor = "node2"
	}

	// The coordinator must notice the missed renewals (lease TTL 2s),
	// requeue the orphan, and the surviving node must finish it.
	if !waitfor.Until(2*time.Minute, func() bool {
		return getState(victimID).Status == serve.StatusCompleted
	}) {
		st := getState(victimID)
		t.Fatalf("victim stuck at %s (worker %q, step %d) after the kill:\n%s",
			st.Status, st.Worker, st.StepsDone, coordLogs.String())
	}
	fin := getState(victimID)
	if fin.Worker != survivor {
		t.Fatalf("victim finished on %q, want survivor %s", fin.Worker, survivor)
	}
	if fin.StepsDone != victimSteps || len(fin.EnergiesHa) != victimSteps {
		t.Fatalf("victim final record: %d steps, %d energies", fin.StepsDone, len(fin.EnergiesHa))
	}
	metrics := func() string {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}()
	expiredRe := regexp.MustCompile(`qmdd_leases_expired_total (\d+)`)
	if m := expiredRe.FindStringSubmatch(metrics); m == nil || m[1] == "0" {
		t.Fatalf("no expired lease recorded after SIGKILL:\n%s", metrics)
	}

	// Zombie fence: a renew presenting the dead node's epoch must get 409.
	body := strings.NewReader(fmt.Sprintf(`{"epoch":%d}`, victimEpoch))
	resp, err := http.Post(base+"/v1/lease/"+victimID+"/renew", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("zombie renew with epoch %d: status %d, want 409", victimEpoch, resp.StatusCode)
	}

	// Everything in the array lands, and qmdctl agrees.
	if out, err := exec.Command(qmdctl, "-addr", base, "wait", ids[0], ids[1], ids[2]).CombinedOutput(); err != nil {
		t.Fatalf("qmdctl wait: %v\n%s", err, out)
	}

	// Ground truth: the same victim spec, uninterrupted, in a standalone
	// in-process manager (same engine, no cache). The requeued,
	// checkpoint-resumed trajectory must match it bit for bit — float64
	// survives the JSON round trip exactly, so == on the decoded values
	// is a bitwise comparison.
	var victimSpec serve.JobSpec
	if err := json.Unmarshal([]byte(spec("victim", victimSteps)), &victimSpec); err != nil {
		t.Fatal(err)
	}
	ref, err := serve.NewManager(serve.Config{
		DataDir: filepath.Join(dir, "ref"), Workers: 1, QueueCap: 4, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ref.Shutdown(ctx)
	}()
	refSt, err := ref.Submit(victimSpec)
	if err != nil {
		t.Fatal(err)
	}
	var refFin *serve.JobState
	if !waitfor.Until(2*time.Minute, func() bool {
		refFin, _ = ref.Get(refSt.ID)
		return refFin.Status == serve.StatusCompleted
	}) {
		t.Fatalf("reference run stuck: %+v", refFin)
	}
	if len(refFin.EnergiesHa) != victimSteps {
		t.Fatalf("reference energies: %d, want %d", len(refFin.EnergiesHa), victimSteps)
	}
	for i := range refFin.EnergiesHa {
		if fin.EnergiesHa[i] != refFin.EnergiesHa[i] {
			t.Fatalf("step %d energy diverged after crash-resume: cluster %v != standalone %v",
				i+1, fin.EnergiesHa[i], refFin.EnergiesHa[i])
		}
		if fin.TemperaturesK[i] != refFin.TemperaturesK[i] {
			t.Fatalf("step %d temperature diverged after crash-resume: cluster %v != standalone %v",
				i+1, fin.TemperaturesK[i], refFin.TemperaturesK[i])
		}
	}

	// Graceful teardown: the survivor drains on SIGTERM, then the
	// coordinator.
	if err := nodes[survivor].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(nodes[survivor], time.Minute); err != nil {
		t.Fatalf("survivor shutdown: %v", err)
	}
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(coord, time.Minute); err != nil {
		t.Fatalf("coordinator shutdown: %v\n%s", err, coordLogs.String())
	}
	if !strings.Contains(coordLogs.String(), "shutdown complete") {
		t.Fatalf("coordinator log missing graceful shutdown:\n%s", coordLogs.String())
	}
}

// waitExit waits for the process to exit cleanly within the budget.
func waitExit(cmd *exec.Cmd, budget time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(budget):
		cmd.Process.Kill()
		return fmt.Errorf("process did not exit within %s", budget)
	}
}
