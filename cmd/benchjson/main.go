// Command benchjson converts `go test -bench` text output (on stdin)
// into a JSON array of benchmark records, one per Benchmark line:
// name, iterations, ns/op, and — when the benchmark reports them —
// B/op, allocs/op, and GFLOP/s. The Makefile pipes the FFT benchmark
// suite through it to produce BENCH_fft.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result row.
type Record struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	GFlops      *float64 `json:"gflops,omitempty"`
}

func main() {
	var recs []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Record{Name: fields[0], Iterations: iters}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.BytesPerOp = &v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.AllocsPerOp = &v
				}
			case "GFLOP/s":
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					r.GFlops = &v
				}
			}
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
