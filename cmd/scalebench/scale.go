package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	qmd "ldcdft"
	"ldcdft/internal/core"
	"ldcdft/internal/machine"
)

// The measured workspace-streaming scale sweep: the same physical system
// (a 64-atom SiC supercell on a fixed 24³ grid) is decomposed into 8,
// 64, 216, and 512 domains, and each point runs one SCF step in its own
// subprocess so the kernel's high-water RSS (VmHWM) isolates that
// point's true peak memory. With bounded solver workspaces the peak RSS
// must stay ~flat as the domain count grows 64× (alpha ≈ 0 in a c·xᵃ
// fit), where a design holding every domain's solver resident would grow
// ~linearly — the measured counterpart of the paper's O(N) weak-scaling
// design point.

// scaleDomains are the swept decompositions; every value must divide
// scaleGridN.
var scaleDomains = []int{2, 4, 6, 8}

const scaleGridN = 24

// scalePoint is one measured row of BENCH_scale.json.
type scalePoint struct {
	DomainsPerAxis int     `json:"domainsPerAxis"`
	Domains        int     `json:"domains"`
	Occupied       int     `json:"occupied"`
	Workspaces     int     `json:"workspaces"`
	DOF            int64   `json:"dof"`
	WallSec        float64 `json:"wallSec"`
	PeakRSSMB      int     `json:"peakRSSMB"`
}

// scaleReport is the BENCH_scale.json schema.
type scaleReport struct {
	Workload string       `json:"workload"`
	Workers  int          `json:"workers"`
	Points   []scalePoint `json:"points"`
	// RSS/Wall hold the c·(domains)ᵃ least-squares fits. RSSAlpha is the
	// headline number: ≈0 means memory is bounded by the worker count,
	// not the domain count.
	RSSAlpha   float64 `json:"rssAlpha"`
	RSSPrefMB  float64 `json:"rssPrefactorMB"`
	WallAlpha  float64 `json:"wallAlpha"`
	WallPrefS  float64 `json:"wallPrefactorSec"`
	Expect     string  `json:"expectation"`
	RSSBounded bool    `json:"rssBounded"`
}

// scaleConfig is the per-point engine configuration (identical across
// the sweep except for the decomposition).
func scaleConfig(nd int) qmd.LDCConfig {
	return qmd.LDCConfig{
		GridN:          scaleGridN,
		DomainsPerAxis: nd,
		BufN:           2,
		Ecut:           6.0,
		KT:             0.05,
		MixAlpha:       0.3,
		Anderson:       true,
		MaxSCF:         100,
		EigenIters:     2,
		Seed:           1,
		Workers:        4,
	}
}

// runScaleChild executes one sweep point in this process and prints its
// JSON row on stdout — the parent runs one child per point so VmHWM is
// per-point.
func runScaleChild(nd int) error {
	sys := qmd.BuildSiC(2)
	eng, err := core.NewEngine(sys, scaleConfig(nd))
	if err != nil {
		return fmt.Errorf("scale child nd=%d: %w", nd, err)
	}
	defer eng.Close()
	start := time.Now()
	if _, _, err := eng.SCFStep(); err != nil {
		return fmt.Errorf("scale child nd=%d: SCF step: %w", nd, err)
	}
	pt := scalePoint{
		DomainsPerAxis: nd,
		Domains:        eng.NumDomains(),
		Occupied:       eng.OccupiedDomains(),
		Workspaces:     eng.ResidentWorkspaces(),
		DOF:            eng.DegreesOfFreedom(),
		WallSec:        time.Since(start).Seconds(),
		PeakRSSMB:      peakRSSMB(),
	}
	return json.NewEncoder(os.Stdout).Encode(pt)
}

// runScaleSweep spawns one child per decomposition, fits the measured
// power laws, and writes the report.
func runScaleSweep(outPath string) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	var points []scalePoint
	for _, nd := range scaleDomains {
		cmd := exec.Command(self, "-scale-child", strconv.Itoa(nd))
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("scale point nd=%d: %w", nd, err)
		}
		var pt scalePoint
		if err := json.Unmarshal(out.Bytes(), &pt); err != nil {
			return fmt.Errorf("scale point nd=%d: %w (output %q)", nd, err, out.String())
		}
		points = append(points, pt)
		fmt.Printf("nd=%d: %4d domains (%3d occupied) in %d workspaces, %6.2fs, peak RSS %d MiB\n",
			nd, pt.Domains, pt.Occupied, pt.Workspaces, pt.WallSec, pt.PeakRSSMB)
	}

	doms := make([]float64, len(points))
	rss := make([]float64, len(points))
	wall := make([]float64, len(points))
	for i, p := range points {
		doms[i] = float64(p.Domains)
		rss[i] = float64(p.PeakRSSMB)
		wall[i] = p.WallSec
	}
	rssC, rssA := machine.FitPowerLaw(doms, rss)
	wallC, wallA := machine.FitPowerLaw(doms, wall)
	rep := scaleReport{
		Workload:  fmt.Sprintf("BuildSiC(2): 64 atoms, %d³ grid, one SCF step per point", scaleGridN),
		Workers:   scaleConfig(2).Workers,
		Points:    points,
		RSSAlpha:  rssA,
		RSSPrefMB: rssC,
		WallAlpha: wallA,
		WallPrefS: wallC,
		Expect: "bounded workspaces: peak RSS ~flat vs domain count (rssAlpha ≈ 0, vs ≈1 " +
			"for a resident-per-domain design); wall tracks total basis work, the paper's O(N) regime",
		RSSBounded: rssA < 0.3,
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(&rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("fit vs domains: peak RSS ≈ %.1f·d^%.3f MiB, wall ≈ %.3g·d^%.3f s\n",
		rssC, rssA, wallC, wallA)
	fmt.Printf("scale report written to %s (rssBounded=%t)\n", outPath, rep.RSSBounded)
	return nil
}

// peakRSSMB reads the process high-water RSS (VmHWM) in MiB; 0 when the
// platform has no /proc.
func peakRSSMB() int {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
