// Command scalebench prints the modelled weak- and strong-scaling
// experiments of the paper (Figs. 5 and 6) on the Blue Gene/Q machine
// model, using the calibrated LDC-DFT cost model. With -perf it
// additionally runs a small real LDC-DFT workload in this process and
// prints the measured per-phase report (the tables themselves are pure
// model arithmetic and record no phases).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	qmd "ldcdft"
	"ldcdft/internal/perf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scalebench: ")
	weak := flag.Bool("weak", true, "run the weak-scaling experiment (Fig. 5)")
	strong := flag.Bool("strong", true, "run the strong-scaling experiment (Fig. 6)")
	doPerf := flag.Bool("perf", false, "run a small real LDC-DFT workload and print the per-phase report")
	perfJS := flag.String("perf-json", "", "write the per-phase report as JSON to this file")
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	scale := flag.Bool("scale", false, "run the measured workspace-streaming scale sweep (one subprocess per decomposition) and write the scale report")
	scaleJS := flag.String("scale-json", "BENCH_scale.json", "output path of the -scale report")
	scaleChild := flag.Int("scale-child", 0, "internal: run one -scale sweep point at this DomainsPerAxis and print its JSON row")
	flag.Parse()

	if *scaleChild > 0 {
		if err := runScaleChild(*scaleChild); err != nil {
			log.Fatalf("%v", err)
		}
		return
	}
	if *scale {
		if err := runScaleSweep(*scaleJS); err != nil {
			log.Fatalf("%v", err)
		}
		return
	}

	stopProf, err := perf.StartCPUProfile(*cpuProf)
	if err != nil {
		log.Fatalf("%v", err)
	}
	defer stopProf()

	if *weak {
		fmt.Println("Fig. 5 — weak scaling: 64·P-atom SiC on P Blue Gene/Q cores")
		fmt.Println("      P        atoms   wall-clock/step   efficiency")
		for _, pt := range qmd.Fig5WeakScaling() {
			fmt.Printf("%8d  %11d  %12.1f s    %8.4f\n",
				pt.Cores, pt.Atoms, pt.WallClock, pt.Efficiency)
		}
		fmt.Println("paper: efficiency 0.984 at P = 786,432 (50,331,648 atoms)")
		fmt.Println()
	}
	if *strong {
		fmt.Println("Fig. 6 — strong scaling: 77,889-atom LiAl-water system")
		fmt.Println("      P    wall-clock/step   speedup   efficiency")
		base := 0.0
		for _, pt := range qmd.Fig6StrongScaling() {
			if base == 0 {
				base = pt.WallClock
			}
			fmt.Printf("%8d  %12.2f s   %7.2f   %8.4f\n",
				pt.Cores, pt.WallClock, base/pt.WallClock, pt.Efficiency)
		}
		fmt.Println("paper: speedup 12.85 (efficiency 0.803) at 16× cores")
	}

	if *doPerf || *perfJS != "" {
		perf.Global.Reset()
		perf.Default.Reset()
		fmt.Println("\nrunning one MD step of an 8-atom SiC cell to measure real phases...")
		sys := qmd.BuildSiC(1)
		sys.InitVelocities(300, rand.New(rand.NewSource(1)))
		cfg := qmd.LDCConfig{
			GridN:          16,
			DomainsPerAxis: 2,
			BufN:           2,
			Ecut:           3.0,
			KT:             0.05,
			MixAlpha:       0.3,
			Anderson:       true,
			MaxSCF:         100,
			EigenIters:     3,
			Seed:           1,
		}
		if _, err := qmd.RunQMD(sys, cfg, 1, 0); err != nil {
			log.Fatalf("perf workload: %v", err)
		}
		if *doPerf {
			fmt.Printf("per-phase performance report (wall %s):\n", perf.Default.Wall().Round(time.Millisecond))
			if err := perf.Default.WriteText(os.Stdout); err != nil {
				log.Fatalf("perf: %v", err)
			}
		}
		if *perfJS != "" {
			f, err := os.Create(*perfJS)
			if err != nil {
				log.Fatalf("perf-json: %v", err)
			}
			defer f.Close()
			if err := perf.Default.WriteJSON(f); err != nil {
				log.Fatalf("perf-json: %v", err)
			}
			fmt.Printf("per-phase JSON report written to %s\n", *perfJS)
		}
	}
}
