// Command scalebench prints the modelled weak- and strong-scaling
// experiments of the paper (Figs. 5 and 6) on the Blue Gene/Q machine
// model, using the calibrated LDC-DFT cost model.
package main

import (
	"flag"
	"fmt"

	qmd "ldcdft"
)

func main() {
	weak := flag.Bool("weak", true, "run the weak-scaling experiment (Fig. 5)")
	strong := flag.Bool("strong", true, "run the strong-scaling experiment (Fig. 6)")
	flag.Parse()

	if *weak {
		fmt.Println("Fig. 5 — weak scaling: 64·P-atom SiC on P Blue Gene/Q cores")
		fmt.Println("      P        atoms   wall-clock/step   efficiency")
		for _, pt := range qmd.Fig5WeakScaling() {
			fmt.Printf("%8d  %11d  %12.1f s    %8.4f\n",
				pt.Cores, pt.Atoms, pt.WallClock, pt.Efficiency)
		}
		fmt.Println("paper: efficiency 0.984 at P = 786,432 (50,331,648 atoms)")
		fmt.Println()
	}
	if *strong {
		fmt.Println("Fig. 6 — strong scaling: 77,889-atom LiAl-water system")
		fmt.Println("      P    wall-clock/step   speedup   efficiency")
		base := 0.0
		for _, pt := range qmd.Fig6StrongScaling() {
			if base == 0 {
				base = pt.WallClock
			}
			fmt.Printf("%8d  %12.2f s   %7.2f   %8.4f\n",
				pt.Cores, pt.WallClock, base/pt.WallClock, pt.Efficiency)
		}
		fmt.Println("paper: speedup 12.85 (efficiency 0.803) at 16× cores")
	}
}
