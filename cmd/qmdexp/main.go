// Command qmdexp runs validation-matrix experiments (internal/expmatrix):
// a parameter grid over a scenario generator, executed as a qmdd job
// array, checked by observable validators, rendered as a pass/fail
// matrix.
//
// Usage:
//
//	qmdexp [-addr URL] [-data dir] run <experiment | spec.json>
//	qmdexp [-data dir] render <experiment | spec.json>
//	qmdexp list
//
// With -addr, jobs go to a running qmdd daemon (standalone or
// coordinator). Without it, qmdexp hosts an in-process job manager over
// -data — the zero-setup mode. Either way, completed cells land in
// <data>/experiments/<name>/ and are skipped when the experiment is
// rerun, so a killed campaign resumes where it left off.
//
// `run` exits 1 when any validator fails (the CI gate behaviour);
// `render` re-evaluates the stored cells without running jobs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ldcdft/internal/expmatrix"
	"ldcdft/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "qmdd base URL; empty runs jobs in-process")
	data := flag.String("data", "qmdexp-data", "experiment store root (and job store in in-process mode)")
	workers := flag.Int("workers", 2, "trajectory workers (in-process mode)")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: qmdexp [-addr URL] [-data dir] {run|render|list} [experiment | spec.json]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("qmdexp: ")
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "run":
		err = run(*addr, *data, *workers, *quiet, rest, false)
	case "render":
		err = run(*addr, *data, *workers, *quiet, rest, true)
	case "list":
		err = list(rest)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func list(args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: qmdexp list")
	}
	for _, s := range expmatrix.Builtins() {
		cells := len(expmatrix.ExpandGrid(s.Axes))
		fmt.Printf("%-18s %2d cells  %s\n", s.Name, cells, s.Title)
	}
	return nil
}

// loadSpec resolves the argument to an experiment spec: a builtin name
// or a path to a spec JSON file.
func loadSpec(arg string) (*expmatrix.Spec, error) {
	if s, ok := expmatrix.Builtin(arg); ok {
		return &s, nil
	}
	raw, err := os.ReadFile(arg)
	if err != nil {
		if !strings.ContainsAny(arg, "./") {
			return nil, fmt.Errorf("unknown experiment %q (and no such spec file); `qmdexp list` shows builtins", arg)
		}
		return nil, err
	}
	var s expmatrix.Spec
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("invalid experiment spec %s: %w", arg, err)
	}
	return &s, nil
}

func run(addr, data string, workers int, quiet bool, args []string, renderOnly bool) error {
	verb := "run"
	if renderOnly {
		verb = "render"
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: qmdexp %s <experiment | spec.json>", verb)
	}
	spec, err := loadSpec(args[0])
	if err != nil {
		return err
	}
	store, err := expmatrix.OpenStore(data, spec.Name)
	if err != nil {
		return err
	}
	logf := log.Printf
	if quiet {
		logf = func(string, ...any) {}
	}
	runner := &expmatrix.Runner{Store: store, Logf: logf}

	var rep *expmatrix.Report
	if renderOnly {
		rep, err = runner.Render(spec)
	} else {
		var shutdown func()
		runner.Client, shutdown, err = openClient(addr, data, workers, logf)
		if err != nil {
			return err
		}
		defer shutdown()
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		rep, err = runner.Run(ctx, spec)
	}
	if err != nil {
		return err
	}
	fmt.Print(expmatrix.RenderMarkdown(rep))
	fmt.Printf("\nreport: %s/report.{md,json}\n", store.Dir())
	if !rep.Pass {
		// The CI-gate contract: a failing matrix fails the command.
		os.Exit(1)
	}
	return nil
}

// openClient builds the job client: HTTP against -addr, or an
// in-process manager over the data dir.
func openClient(addr, data string, workers int, logf func(string, ...any)) (expmatrix.JobClient, func(), error) {
	if addr != "" {
		return &expmatrix.HTTPClient{Base: strings.TrimRight(addr, "/")}, func() {}, nil
	}
	mgr, err := serve.NewManager(serve.Config{
		DataDir:  data,
		Workers:  workers,
		QueueCap: 64,
		Logf:     logf,
	})
	if err != nil {
		return nil, nil, err
	}
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		mgr.Shutdown(ctx)
	}
	return &expmatrix.LocalClient{M: mgr}, shutdown, nil
}
