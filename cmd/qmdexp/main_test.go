package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ldcdft/internal/expmatrix"
	"ldcdft/internal/waitfor"
)

// TestExpSmoke is the `make exp-smoke` gate: a 2×2 reactive mini-matrix
// (pairs × temperature) runs through a real standalone qmdd daemon as a
// job array, the observable validators evaluate, and the matrix
// renders. The first campaign is SIGKILLed mid-flight; the rerun must
// resume from the store — completed cells cached, only the remainder
// resubmitted — and the finished matrix must pass, including the
// Arrhenius fit against the paper's 0.068 eV. A qmdctl results fetch
// against one of the array's jobs rides along.
func TestExpSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon and harness binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"qmdd", "qmdexp", "qmdctl"} {
		bin := filepath.Join(dir, name)
		if out, err := exec.Command("go", "build", "-o", bin, "ldcdft/cmd/"+name).CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	// Standalone daemon on a random port.
	daemonLogs := &syncBuffer{}
	daemon := exec.Command(bins["qmdd"], "-addr", "127.0.0.1:0",
		"-data", filepath.Join(dir, "qmdd-data"), "-workers", "2", "-queue-cap", "8")
	daemon.Stderr = daemonLogs
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()
	listenRe := regexp.MustCompile(`listening on (\S+) `)
	var base string
	if !waitfor.Until(30*time.Second, func() bool {
		m := listenRe.FindStringSubmatch(daemonLogs.String())
		if m == nil {
			return false
		}
		base = "http://" + m[1]
		return true
	}) {
		t.Fatalf("no listen line in daemon output:\n%s", daemonLogs.String())
	}

	// The mini-matrix: budgets picked so every cell deterministically
	// produces H₂ (seeded builder + seeded thermostat) in ~2 s.
	specPath := filepath.Join(dir, "smoke.json")
	const expName = "smoke-2x2"
	spec := fmt.Sprintf(`{
		"name": %q,
		"title": "exp-smoke 2×2 reactive matrix",
		"scenario": "lial-water",
		"base": {"steps": 600, "seed": 3},
		"axes": [
			{"name": "pairs", "values": [5, 6]},
			{"name": "temp_k", "values": [900, 1500]}
		],
		"validators": [
			{"kind": "temp-track", "tolerance": 0.3},
			{"kind": "census-h2", "min": 1},
			{"kind": "rate-range", "min": 1e10, "max": 1e14}
		],
		"matrix_validators": [
			{"kind": "arrhenius", "target": 0.068, "tolerance": 0.05}
		]
	}`, expName)
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	expData := filepath.Join(dir, "exp-data")
	cellsDir := filepath.Join(expData, "experiments", expName, "cells")
	storedCells := func() int {
		matches, _ := filepath.Glob(filepath.Join(cellsDir, "*.json"))
		return len(matches)
	}

	// Campaign 1: killed as soon as the first cell lands in the store.
	// The daemon keeps running — only the harness dies.
	run1Logs := &syncBuffer{}
	run1 := exec.Command(bins["qmdexp"], "-addr", base, "-data", expData, "run", specPath)
	run1.Stdout, run1.Stderr = run1Logs, run1Logs
	if err := run1.Start(); err != nil {
		t.Fatal(err)
	}
	if !waitfor.Until(2*time.Minute, func() bool { return storedCells() >= 1 }) {
		run1.Process.Kill()
		t.Fatalf("no cell stored before timeout\nharness:\n%s\ndaemon:\n%s", run1Logs.String(), daemonLogs.String())
	}
	if err := run1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	run1.Wait()
	done := storedCells()
	if done < 1 || done >= 4 {
		t.Fatalf("killed campaign left %d/4 cells stored; want a partial matrix", done)
	}
	t.Logf("campaign killed with %d/4 cells stored", done)

	// Campaign 2: resumes, completes, passes — exit code 0 is the gate.
	run2Logs := &syncBuffer{}
	run2 := exec.Command(bins["qmdexp"], "-addr", base, "-data", expData, "run", specPath)
	run2.Stdout, run2.Stderr = run2Logs, run2Logs
	if err := run2.Run(); err != nil {
		t.Fatalf("resumed campaign failed: %v\nharness:\n%s\ndaemon:\n%s", err, run2Logs.String(), daemonLogs.String())
	}

	// The report: every cell completed, the killed campaign's cells came
	// from the store (no recomputation), and every check passed.
	var rep expmatrix.Report
	raw, err := os.ReadFile(filepath.Join(expData, "experiments", expName, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("matrix failed:\n%s", run2Logs.String())
	}
	if rep.Cached < done || rep.Cached+rep.Ran != 4 {
		t.Fatalf("resume accounting: cached=%d ran=%d (killed campaign stored %d)", rep.Cached, rep.Ran, done)
	}
	for _, c := range rep.Cells {
		if len(c.Checks) != 3 || !c.Pass {
			t.Fatalf("cell %s: %d checks, pass=%v", c.Key, len(c.Checks), c.Pass)
		}
	}
	if len(rep.Matrix) != 1 || rep.Matrix[0].Kind != "arrhenius" || !rep.Matrix[0].Pass {
		t.Fatalf("arrhenius matrix check: %+v", rep.Matrix)
	}
	t.Logf("Arrhenius: %s", rep.Matrix[0].Detail)

	// Rendered output: summary markdown on stdout and report.md on disk.
	if out := run2Logs.String(); !strings.Contains(out, "| pairs | temp_k |") {
		t.Fatalf("rendered matrix missing from output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(expData, "experiments", expName, "report.md")); err != nil {
		t.Fatalf("report.md: %v", err)
	}

	// qmdctl fetches one array job's results straight off the daemon.
	var jobID string
	for _, c := range rep.Cells {
		if !c.Cached {
			jobID = c.JobID
			break
		}
	}
	if jobID == "" {
		jobID = rep.Cells[0].JobID
	}
	out, err := exec.Command(bins["qmdctl"], "-addr", base, "results", jobID).CombinedOutput()
	if err != nil {
		t.Fatalf("qmdctl results %s: %v\n%s", jobID, err, out)
	}
	var res struct {
		Engine string `json:"engine"`
		Census struct {
			H2 int `json:"h2"`
		} `json:"census"`
	}
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatalf("qmdctl results output: %v\n%s", err, out)
	}
	if res.Engine != "reactive" || res.Census.H2 < 1 {
		t.Fatalf("qmdctl results: engine=%q h2=%d\n%s", res.Engine, res.Census.H2, out)
	}

	// SIGTERM drains the daemon cleanly.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, daemonLogs.String())
		}
	case <-time.After(time.Minute):
		daemon.Process.Kill()
		t.Fatalf("daemon did not exit after SIGTERM\n%s", daemonLogs.String())
	}
}

// syncBuffer is a goroutine-safe sink for subprocess output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
