package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ldcdft/internal/serve"
)

func TestSplitSpecs(t *testing.T) {
	single, err := splitSpecs([]byte(`{"name":"a"}`))
	if err != nil || len(single) != 1 {
		t.Fatalf("single object: %v, %v", single, err)
	}
	arr, err := splitSpecs([]byte(`[{"name":"a"},{"name":"b"}]`))
	if err != nil || len(arr) != 2 {
		t.Fatalf("array: %v, %v", arr, err)
	}
	env, err := splitSpecs([]byte(`{"jobs":[{"name":"a"},{"name":"b"},{"name":"c"}]}`))
	if err != nil || len(env) != 3 {
		t.Fatalf("envelope: %v, %v", env, err)
	}
	if _, err := splitSpecs([]byte("  ")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := splitSpecs([]byte("[{bad")); err == nil {
		t.Fatal("malformed array accepted")
	}
}

// instantRunner completes any job immediately with one energy per step.
type instantRunner struct{}

func (instantRunner) Run(ctx context.Context, spec serve.JobSpec, ckPath string,
	onStep func(int, float64, float64)) (serve.RunReport, error) {
	var es, ts []float64
	for i := 1; i <= spec.Steps; i++ {
		onStep(i, -float64(i), 300)
		es, ts = append(es, -float64(i)), append(ts, 300)
	}
	return serve.RunReport{Steps: spec.Steps, EnergiesHa: es, TemperaturesK: ts}, nil
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := make(chan string, 1)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		out <- sb.String()
	}()
	if ferr != nil {
		t.Fatalf("command failed: %v", ferr)
	}
	select {
	case s := <-out:
		return s
	case <-time.After(5 * time.Second):
		t.Fatal("stdout capture stalled")
		return ""
	}
}

func TestSubmitWaitListStatusCancel(t *testing.T) {
	m, err := serve.NewManager(serve.Config{
		DataDir: t.TempDir(), Workers: 1, QueueCap: 8, Runner: instantRunner{}, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	c := client{base: srv.URL}

	atomJSON := `{"species":"H","position":[4,4,4]}`
	spec := func(name string) string {
		return `{"name":"` + name + `","cell_l":8,"atoms":[` + atomJSON +
			`],"config":{"grid_n":8,"domains_per_axis":1,"ecut":2},"steps":2}`
	}
	batch := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(batch, []byte(`{"jobs":[`+spec("a")+","+spec("b")+`]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	out := capture(t, func() error { return c.submit([]string{batch}) })
	ids := strings.Fields(out)
	if len(ids) != 2 {
		t.Fatalf("submit printed %q, want two job IDs", out)
	}

	out = capture(t, func() error { return c.wait(ids) })
	for _, id := range ids {
		if !strings.Contains(out, id+" completed") {
			t.Fatalf("wait output %q missing completion of %s", out, id)
		}
	}

	out = capture(t, func() error { return c.list(nil) })
	if !strings.Contains(out, ids[0]) || !strings.Contains(out, "completed") {
		t.Fatalf("list output %q", out)
	}

	out = capture(t, func() error { return c.status([]string{ids[0]}) })
	var st jobState
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("status printed invalid JSON %q: %v", out, err)
	}
	if st.ID != ids[0] || st.Status != "completed" || st.StepsDone != 2 {
		t.Fatalf("status state %+v", st)
	}

	// Cancelling a finished job is a 409 — surfaced as an error.
	if err := c.cancel([]string{ids[0]}); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("cancel of finished job: %v", err)
	}
	if err := c.status([]string{"j999"}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("status of unknown job: %v", err)
	}
}

func TestWatchStreamsEvents(t *testing.T) {
	m, err := serve.NewManager(serve.Config{
		DataDir: t.TempDir(), Workers: 1, QueueCap: 8, Runner: instantRunner{}, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	c := client{base: srv.URL}

	st, err := m.Submit(serve.JobSpec{
		Name: "w", CellL: 8,
		Atoms:  []serve.AtomSpec{{Species: "H", Position: [3]float64{4, 4, 4}}},
		Config: serve.ConfigSpec{GridN: 8, DomainsPerAxis: 1, Ecut: 2},
		Steps:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error { return c.watch([]string{st.ID}) })
	if !strings.Contains(out, `"done"`) {
		t.Fatalf("watch output missing done event:\n%s", out)
	}
}
