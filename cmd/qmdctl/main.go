// Command qmdctl is the client CLI for a qmdd daemon (standalone or
// coordinator — the public job API is identical).
//
// Usage:
//
//	qmdctl [-addr http://127.0.0.1:8432] <command> [args]
//
// Commands:
//
//	submit <spec.json | ->   submit jobs; prints one job ID per line.
//	                         The file may hold a single JobSpec object,
//	                         a JSON array of specs, or a batch envelope
//	                         {"jobs": [...]} — arrays submit as a job
//	                         array, in order.
//	status <id>              print the job's state as JSON.
//	results <id>             print a completed job's final observable
//	                         record (energies/temperature tail, final
//	                         energy, census and rates for reactive jobs)
//	                         as JSON.
//	list                     one line per known job: id, status,
//	                         progress, worker, name.
//	cancel <id>              cancel a queued or running job.
//	watch <id>               stream the job's SSE events until it
//	                         finishes.
//	wait <id>...             poll until every listed job is terminal;
//	                         exit 1 if any failed or was cancelled.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8432", "qmdd base URL")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: qmdctl [-addr URL] {submit|status|results|list|cancel|watch|wait} [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	c := client{base: strings.TrimRight(*addr, "/")}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		err = c.submit(rest)
	case "status":
		err = c.status(rest)
	case "results":
		err = c.results(rest)
	case "list":
		err = c.list(rest)
	case "cancel":
		err = c.cancel(rest)
	case "watch":
		err = c.watch(rest)
	case "wait":
		err = c.wait(rest)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmdctl: %v\n", err)
		os.Exit(1)
	}
}

type client struct{ base string }

// jobState mirrors the fields of serve.JobState this CLI presents. The
// raw JSON is passed through for status, so unknown fields survive.
type jobState struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Status    string `json:"status"`
	Steps     int    `json:"steps"`
	StepsDone int    `json:"steps_done"`
	Worker    string `json:"worker"`
	Error     string `json:"error"`
}

type apiError struct {
	Error string `json:"error"`
}

// do issues a request and decodes an API error envelope on non-2xx.
func (c client) do(method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, ae.Error)
		}
		return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	return resp, nil
}

// splitSpecs accepts a single spec object, an array of specs, or a
// {"jobs": [...]} envelope, and returns the specs as raw JSON values.
func splitSpecs(raw []byte) ([]json.RawMessage, error) {
	raw = bytes.TrimSpace(raw)
	if len(raw) == 0 {
		return nil, fmt.Errorf("empty job spec input")
	}
	if raw[0] == '[' {
		var arr []json.RawMessage
		if err := json.Unmarshal(raw, &arr); err != nil {
			return nil, fmt.Errorf("invalid job array: %w", err)
		}
		return arr, nil
	}
	var envelope struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil {
		return nil, fmt.Errorf("invalid job spec: %w", err)
	}
	if envelope.Jobs != nil {
		return envelope.Jobs, nil
	}
	return []json.RawMessage{raw}, nil
}

func (w client) submit(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: qmdctl submit <spec.json | ->")
	}
	var raw []byte
	var err error
	if args[0] == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(args[0])
	}
	if err != nil {
		return err
	}
	specs, err := splitSpecs(raw)
	if err != nil {
		return err
	}
	for i, spec := range specs {
		resp, err := w.do(http.MethodPost, "/v1/jobs", bytes.NewReader(spec))
		if err != nil {
			return fmt.Errorf("job %d/%d: %w", i+1, len(specs), err)
		}
		var st jobState
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if derr != nil {
			return derr
		}
		fmt.Println(st.ID)
	}
	return nil
}

func (c client) status(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: qmdctl status <id>")
	}
	resp, err := c.do(http.MethodGet, "/v1/jobs/"+args[0], nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// results prints a completed job's final observable record — the body
// of GET /v1/jobs/{id}/results, passed through verbatim so callers can
// pipe it into jq or the experiment harness.
func (c client) results(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: qmdctl results <id>")
	}
	resp, err := c.do(http.MethodGet, "/v1/jobs/"+args[0]+"/results", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c client) list(args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: qmdctl list")
	}
	resp, err := c.do(http.MethodGet, "/v1/jobs", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var jobs []jobState
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return err
	}
	tw := bufio.NewWriter(os.Stdout)
	defer tw.Flush()
	fmt.Fprintf(tw, "%-12s %-10s %-9s %-16s %s\n", "ID", "STATUS", "STEPS", "WORKER", "NAME")
	for _, j := range jobs {
		fmt.Fprintf(tw, "%-12s %-10s %4d/%-4d %-16s %s\n",
			j.ID, j.Status, j.StepsDone, j.Steps, j.Worker, j.Name)
	}
	return nil
}

func (c client) cancel(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: qmdctl cancel <id>")
	}
	resp, err := c.do(http.MethodDelete, "/v1/jobs/"+args[0], nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st jobState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("%s %s\n", st.ID, st.Status)
	return nil
}

// watch streams the job's server-sent events, one line per event, until
// the terminal "done" event.
func (c client) watch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: qmdctl watch <id>")
	}
	resp, err := c.do(http.MethodGet, "/v1/jobs/"+args[0]+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			fmt.Println(data)
		}
	}
	return sc.Err()
}

// wait polls until every listed job is terminal. Exit status 1 (via the
// returned error) if any failed or was cancelled.
func (c client) wait(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: qmdctl wait <id>...")
	}
	pending := make(map[string]bool, len(args))
	for _, id := range args {
		pending[id] = true
	}
	var bad []string
	for len(pending) > 0 {
		for id := range pending {
			resp, err := c.do(http.MethodGet, "/v1/jobs/"+id, nil)
			if err != nil {
				return err
			}
			var st jobState
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr != nil {
				return derr
			}
			switch st.Status {
			case "completed":
				fmt.Printf("%s completed (%d steps)\n", id, st.StepsDone)
				delete(pending, id)
			case "failed", "cancelled":
				fmt.Printf("%s %s: %s\n", id, st.Status, st.Error)
				bad = append(bad, id)
				delete(pending, id)
			}
		}
		if len(pending) > 0 {
			time.Sleep(250 * time.Millisecond)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("%d job(s) did not complete: %s", len(bad), strings.Join(bad, ", "))
	}
	return nil
}
