package qmd

import (
	"fmt"

	"ldcdft/internal/geom"
	"ldcdft/internal/grid"
	"ldcdft/internal/md"
	"ldcdft/internal/qio"
	"ldcdft/internal/units"
)

// QMDOptions carries the trajectory options beyond the physics
// configuration — currently the checkpoint/restart policy. The zero
// value disables checkpointing.
type QMDOptions struct {
	// CheckpointEvery writes a checkpoint after every N completed MD
	// steps (0 = never). Combined with CheckpointPath.
	CheckpointEvery int
	// CheckpointPath is the checkpoint file; each write replaces it
	// atomically (temp file + fsync + rename).
	CheckpointPath string
	// CheckpointGroupSize is the collective-I/O aggregation group size
	// (0 = 192, the paper's §4.2 optimum).
	CheckpointGroupSize int
}

// RunQMDOpts is RunQMD with trajectory options: every CheckpointEvery
// steps the full restartable state — configuration, last forces, the
// converged SCF density, and the accumulated per-step record — is
// written through the collective I/O path of internal/qio.
func RunQMDOpts(sys *System, cfg LDCConfig, steps int, dtFs float64, opts QMDOptions) (*QMDResult, error) {
	ff := &DFTForceField{Cfg: cfg}
	in := md.NewIntegrator(ff, dtFs)
	return runTrajectory(sys.Clone(), cfg, steps, 0, in, ff, &QMDResult{}, opts)
}

// ResumeQMD restores a trajectory from a checkpoint and continues it to
// steps total MD steps (if the checkpoint is already at or past steps,
// no further steps run and the recorded trajectory is returned). The
// integrator is re-primed with the checkpointed forces and the SCF is
// warm-started from the checkpointed density, so a resumed trajectory
// reproduces the uninterrupted one bit-for-bit. A dtFs of 0 adopts the
// checkpoint's time step.
func ResumeQMD(path string, cfg LDCConfig, steps int, dtFs float64, opts QMDOptions) (*QMDResult, error) {
	ck, err := qio.ReadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	work, err := ck.RestoreSystem()
	if err != nil {
		return nil, err
	}
	if dtFs == 0 {
		dtFs = ck.DtFs
	}
	ff := &DFTForceField{Cfg: cfg}
	if ck.GridN > 0 {
		if cfg.GridN != ck.GridN {
			return nil, fmt.Errorf("qmd: resume: checkpoint density grid %d³ does not match configured grid %d³",
				ck.GridN, cfg.GridN)
		}
		ff.SetDensity(&grid.Field{Grid: grid.New(ck.GridN, work.Cell.L), Data: ck.Rho})
	}
	in := md.NewIntegrator(ff, dtFs)
	if ck.Force != nil {
		in.Prime(ck.Energy, ck.Force)
	}
	out := &QMDResult{
		Steps:         ck.Step,
		SCFIterations: ck.SCFIterations,
		Energies:      ck.Energies,
		Temperatures:  ck.Temperatures,
	}
	if steps < ck.Step {
		steps = ck.Step
	}
	return runTrajectory(work, cfg, steps, ck.Step, in, ff, out, opts)
}

// runTrajectory advances work from startStep to steps total MD steps,
// accumulating into out. On a mid-trajectory error the partial result —
// including the last good FinalSystem — is returned alongside the error,
// so callers (and checkpoints) keep the state up to the failure.
func runTrajectory(work *System, cfg LDCConfig, steps, startStep int, in *md.Integrator,
	ff *DFTForceField, out *QMDResult, opts QMDOptions) (*QMDResult, error) {
	for i := startStep; i < steps; i++ {
		if err := in.Step(work); err != nil {
			out.FinalSystem = work
			return out, fmt.Errorf("qmd: MD step %d: %w", i+1, err)
		}
		out.Steps++
		out.SCFIterations += ff.LastSCFIters
		out.Energies = append(out.Energies, in.PotentialEnergy())
		out.Temperatures = append(out.Temperatures, work.Temperature())
		if opts.CheckpointEvery > 0 && opts.CheckpointPath != "" && (i+1)%opts.CheckpointEvery == 0 {
			if err := writeQMDCheckpoint(work, in, ff, out, opts); err != nil {
				out.FinalSystem = work
				return out, fmt.Errorf("qmd: checkpoint at step %d: %w", i+1, err)
			}
		}
	}
	out.FinalSystem = work
	return out, nil
}

// writeQMDCheckpoint captures the restartable trajectory state and
// writes it through the collective checkpoint path.
func writeQMDCheckpoint(work *System, in *md.Integrator, ff *DFTForceField,
	out *QMDResult, opts QMDOptions) error {
	ck, err := qio.CheckpointFromSystem(work)
	if err != nil {
		return err
	}
	ck.Step = out.Steps
	ck.DtFs = in.DtAU * units.FsPerAtomicTime
	ck.Energy = in.PotentialEnergy()
	ck.Force = append([]geom.Vec3(nil), in.Forces()...)
	ck.SCFIterations = out.SCFIterations
	ck.Energies = out.Energies
	ck.Temperatures = out.Temperatures
	if rho := ff.Density(); rho != nil {
		ck.GridN = rho.Grid.N
		ck.Rho = rho.Data
	}
	_, err = qio.WriteCheckpoint(opts.CheckpointPath, ck, qio.CheckpointWriteOptions{
		GroupSize:      opts.CheckpointGroupSize,
		DomainsPerAxis: ff.Cfg.DomainsPerAxis,
	})
	return err
}
