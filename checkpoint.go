package qmd

import (
	"context"
	"errors"
	"fmt"
	"os"

	"ldcdft/internal/cache"
	"ldcdft/internal/geom"
	"ldcdft/internal/grid"
	"ldcdft/internal/md"
	"ldcdft/internal/qio"
	"ldcdft/internal/units"
)

// QMDOptions carries the trajectory options beyond the physics
// configuration — the checkpoint/restart policy, cooperative
// cancellation, and per-step observation. The zero value disables all
// three.
type QMDOptions struct {
	// CheckpointEvery writes a checkpoint after every N completed MD
	// steps (0 = never). Combined with CheckpointPath.
	CheckpointEvery int
	// CheckpointPath is the checkpoint file; each write replaces it
	// atomically (temp file + fsync + rename).
	CheckpointPath string
	// CheckpointGroupSize is the collective-I/O aggregation group size
	// (0 = 192, the paper's §4.2 optimum).
	CheckpointGroupSize int
	// DeltaCheckpoints switches to incremental checkpointing: the first
	// write (and periodic refreshes) store a full base at CheckpointPath,
	// and every other write stores only the state that changed since the
	// base — a small delta file at CheckpointPath+".delta" — so frequent
	// checkpointing of a large system costs O(changed state) per step.
	// When a delta grows to half the base size the next write folds it
	// into a fresh base. ResumeQMD transparently applies a pending delta
	// whether or not this flag is set.
	DeltaCheckpoints bool

	// Ctx, when non-nil, cancels the trajectory cooperatively: between
	// MD steps and between SCF iterations inside a step. A cancelled
	// trajectory returns the partial QMDResult together with an error
	// wrapping the context's cancellation cause, and — when
	// CheckpointPath is set and at least one step has completed — first
	// writes a final checkpoint of the last *completed* step, so the
	// trajectory resumes bit-for-bit. A cancellation that lands inside
	// an SCF solve never checkpoints the torn mid-step state.
	Ctx context.Context

	// OnStep, when non-nil, is invoked after every completed MD step
	// with the 1-based absolute step index, the potential energy (Ha)
	// and the instantaneous temperature (K) — the hook job-serving
	// layers use for live progress streams. It runs synchronously on
	// the trajectory goroutine.
	OnStep func(step int, energyHa, tempK float64)

	// Cache, when non-nil, is the SCF warm-start cache consulted before
	// every force evaluation and populated after every solve (see
	// DFTForceField.Cache). Safe to share across concurrent trajectories.
	Cache *cache.Cache
}

// RunQMDOpts is RunQMD with trajectory options: every CheckpointEvery
// steps the full restartable state — configuration, last forces, the
// converged SCF density, and the accumulated per-step record — is
// written through the collective I/O path of internal/qio.
func RunQMDOpts(sys *System, cfg LDCConfig, steps int, dtFs float64, opts QMDOptions) (*QMDResult, error) {
	ff := &DFTForceField{Cfg: cfg, Cache: opts.Cache}
	in := md.NewIntegrator(ff, dtFs)
	return runTrajectory(sys.Clone(), cfg, steps, 0, in, ff, &QMDResult{}, opts, &checkpointWriter{opts: opts})
}

// ResumeQMD restores a trajectory from a checkpoint and continues it to
// steps total MD steps (if the checkpoint is already at or past steps,
// no further steps run and the recorded trajectory is returned). The
// integrator is re-primed with the checkpointed forces and the SCF is
// warm-started from the checkpointed density, so a resumed trajectory
// reproduces the uninterrupted one bit-for-bit. A dtFs of 0 adopts the
// checkpoint's time step.
func ResumeQMD(path string, cfg LDCConfig, steps int, dtFs float64, opts QMDOptions) (*QMDResult, error) {
	base, err := qio.LoadCheckpointBase(path)
	if err != nil {
		return nil, err
	}
	// A pending delta next to the base holds the newest completed step —
	// apply it whether or not this run writes deltas, so a restart never
	// silently rewinds past work a delta checkpoint recorded.
	ck, err := qio.ApplyDeltaIfPresent(base, path+".delta")
	if err != nil {
		return nil, err
	}
	work, err := ck.RestoreSystem()
	if err != nil {
		return nil, err
	}
	if dtFs == 0 {
		dtFs = ck.DtFs
	}
	ff := &DFTForceField{Cfg: cfg, Cache: opts.Cache}
	if ck.GridN > 0 {
		if cfg.GridN != ck.GridN {
			return nil, fmt.Errorf("qmd: resume: checkpoint density grid %d³ does not match configured grid %d³",
				ck.GridN, cfg.GridN)
		}
		ff.SetDensity(&grid.Field{Grid: grid.New(ck.GridN, work.Cell.L), Data: ck.Rho})
	}
	in := md.NewIntegrator(ff, dtFs)
	if ck.Force != nil {
		in.Prime(ck.Energy, ck.Force)
	}
	out := &QMDResult{
		Steps:         ck.Step,
		SCFIterations: ck.SCFIterations,
		Energies:      ck.Energies,
		Temperatures:  ck.Temperatures,
	}
	if steps < ck.Step {
		steps = ck.Step
	}
	cw := &checkpointWriter{opts: opts}
	if opts.DeltaCheckpoints {
		// Seed the writer with the on-disk base so the continued run keeps
		// appending deltas to it instead of rewriting a full checkpoint.
		cw.base = base
		if info, err := os.Stat(path); err == nil {
			cw.baseBytes = info.Size()
		}
	}
	return runTrajectory(work, cfg, steps, ck.Step, in, ff, out, opts, cw)
}

// trajSnapshot is the restartable state of the last completed MD step —
// the only state a cancellation-triggered checkpoint may capture (the
// live system is torn when a cancellation lands mid-step).
type trajSnapshot struct {
	sys     *System
	energy  float64
	forces  []geom.Vec3
	rho     *grid.Field
	dtFs    float64
	domains int
}

// capture copies the post-step trajectory state. The density pointer is
// retained without copying: DFTForceField replaces (never mutates) its
// warm-start density on each force evaluation.
func capture(work *System, in *md.Integrator, ff *DFTForceField) *trajSnapshot {
	return &trajSnapshot{
		sys:     work.Clone(),
		energy:  in.PotentialEnergy(),
		forces:  append([]geom.Vec3(nil), in.Forces()...),
		rho:     ff.Density(),
		dtFs:    in.DtAU * units.FsPerAtomicTime,
		domains: ff.Cfg.DomainsPerAxis,
	}
}

// runTrajectory advances work from startStep to steps total MD steps,
// accumulating into out. On a mid-trajectory error the partial result —
// including the last good FinalSystem — is returned alongside the error,
// so callers (and checkpoints) keep the state up to the failure. When
// opts.Ctx is cancelled the trajectory stops between steps (or between
// SCF iterations mid-step), writes a final checkpoint of the last
// completed step if checkpointing is configured, and returns an error
// wrapping the cancellation cause.
func runTrajectory(work *System, cfg LDCConfig, steps, startStep int, in *md.Integrator,
	ff *DFTForceField, out *QMDResult, opts QMDOptions, cw *checkpointWriter) (*QMDResult, error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ff.Ctx = ctx
	// Snapshots are only needed to back cancellation checkpoints.
	snapshots := opts.CheckpointPath != "" && ctx.Done() != nil
	var last *trajSnapshot
	cancelled := func() (*QMDResult, error) {
		cause := context.Cause(ctx)
		if last != nil {
			out.FinalSystem = last.sys
			if opts.CheckpointPath != "" {
				if err := cw.write(last, out); err != nil {
					return out, fmt.Errorf("qmd: final checkpoint after cancellation at step %d: %w", out.Steps, err)
				}
			}
		} else {
			out.FinalSystem = work
		}
		return out, fmt.Errorf("qmd: trajectory cancelled after step %d: %w", out.Steps, cause)
	}
	for i := startStep; i < steps; i++ {
		if ctx.Err() != nil {
			return cancelled()
		}
		if err := in.Step(work); err != nil {
			if ctx.Err() != nil {
				return cancelled()
			}
			out.FinalSystem = work
			return out, fmt.Errorf("qmd: MD step %d: %w", i+1, err)
		}
		out.Steps++
		out.SCFIterations += ff.LastSCFIters
		out.Energies = append(out.Energies, in.PotentialEnergy())
		out.Temperatures = append(out.Temperatures, work.Temperature())
		if opts.OnStep != nil {
			opts.OnStep(i+1, in.PotentialEnergy(), work.Temperature())
		}
		if snapshots {
			last = capture(work, in, ff)
		}
		if opts.CheckpointEvery > 0 && opts.CheckpointPath != "" && (i+1)%opts.CheckpointEvery == 0 {
			snap := last
			if snap == nil {
				snap = capture(work, in, ff)
			}
			if err := cw.write(snap, out); err != nil {
				out.FinalSystem = work
				return out, fmt.Errorf("qmd: checkpoint at step %d: %w", i+1, err)
			}
		}
	}
	out.FinalSystem = work
	return out, nil
}

// checkpointWriter writes trajectory checkpoints: independent full files
// by default, or — with QMDOptions.DeltaCheckpoints — a full base at
// CheckpointPath plus a rotating delta at CheckpointPath+".delta". Both
// files are written crash-safely, and every on-disk state reachable by a
// crash resumes consistently: old base + new delta, or new base + stale
// delta (ignored via its base-CRC binding).
type checkpointWriter struct {
	opts      QMDOptions
	base      *qio.DeltaBase
	baseBytes int64
}

// write checkpoints the captured trajectory state and the accumulated
// per-step record through the collective checkpoint path.
func (w *checkpointWriter) write(snap *trajSnapshot, out *QMDResult) error {
	ck, err := qio.CheckpointFromSystem(snap.sys)
	if err != nil {
		return err
	}
	ck.Step = out.Steps
	ck.DtFs = snap.dtFs
	ck.Energy = snap.energy
	ck.Force = snap.forces
	ck.SCFIterations = out.SCFIterations
	ck.Energies = out.Energies
	ck.Temperatures = out.Temperatures
	if snap.rho != nil {
		ck.GridN = snap.rho.Grid.N
		ck.Rho = snap.rho.Data
	}
	wopts := qio.CheckpointWriteOptions{
		GroupSize:      w.opts.CheckpointGroupSize,
		DomainsPerAxis: snap.domains,
	}
	if !w.opts.DeltaCheckpoints {
		_, err = qio.WriteCheckpoint(w.opts.CheckpointPath, ck, wopts)
		return err
	}
	if w.base != nil {
		n, err := qio.WriteCheckpointDelta(w.opts.CheckpointPath+".delta", ck, w.base)
		switch {
		case err == nil && n*2 < w.baseBytes:
			return nil
		case err == nil:
			// The delta grew to half the base: fold it into a fresh base so
			// write cost stays proportional to recent change, not drift
			// accumulated since the first step.
		case errors.Is(err, qio.ErrDeltaIncompatible):
			// System shape changed; start a new base.
		default:
			return err
		}
	}
	base, n, err := qio.WriteCheckpointBase(w.opts.CheckpointPath, ck, wopts)
	if err != nil {
		return err
	}
	w.base, w.baseBytes = base, n
	// Any leftover delta is now stale (bound to the previous base's CRC)
	// and would be ignored on resume; remove it so the on-disk state is
	// unambiguous.
	os.Remove(w.opts.CheckpointPath + ".delta")
	return nil
}
