package qmd

import (
	"math"
	"testing"
)

// Fig9aArrhenius at a quick budget: the sweep must cover the paper's
// three temperatures, produce finite non-negative rates and pH proxies,
// and the fitted activation energy must be finite (zero is allowed —
// a tiny budget may leave a cold cell with no H₂, degenerating the
// fit, but it must never be NaN).
func TestFig9aArrheniusQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("reactive MD sweep is expensive")
	}
	res, err := Fig9aArrhenius(8, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantTemps := []float64{300, 600, 1500}
	if len(res.TempsK) != 3 || len(res.Rates) != 3 ||
		len(res.PHStart) != 3 || len(res.PHEnd) != 3 {
		t.Fatalf("sweep shape: temps=%d rates=%d phStart=%d phEnd=%d",
			len(res.TempsK), len(res.Rates), len(res.PHStart), len(res.PHEnd))
	}
	for i, tk := range res.TempsK {
		if tk != wantTemps[i] {
			t.Fatalf("temps %v, want %v", res.TempsK, wantTemps)
		}
		if r := res.Rates[i]; math.IsNaN(r) || r < 0 {
			t.Fatalf("rate at %g K is %g", tk, r)
		}
		if math.IsNaN(res.PHStart[i]) || math.IsNaN(res.PHEnd[i]) {
			t.Fatalf("pH proxy NaN at %g K", tk)
		}
	}
	if math.IsNaN(res.EaEV) || math.IsInf(res.EaEV, 0) {
		t.Fatalf("Ea = %g eV", res.EaEV)
	}
	if res.Prefactor < 0 || math.IsNaN(res.Prefactor) {
		t.Fatalf("prefactor = %g", res.Prefactor)
	}
	// The hottest cell must out-produce the coldest: the qualitative
	// Arrhenius ordering Fig. 9(a) rests on.
	if res.Rates[2] < res.Rates[0] {
		t.Fatalf("rate(1500 K) = %g < rate(300 K) = %g", res.Rates[2], res.Rates[0])
	}
}
