module ldcdft

go 1.22
