GO ?= go

.PHONY: build test vet fmt check race bench bench-smoke serve-smoke cluster-smoke exp-smoke bench-cache bench-multigrid bench-serve bench-scale scale-smoke bce

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the files) if anything is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# check is the pre-commit gate: formatting, static analysis, full tests,
# and the bounds-check pin on the hot kernels.
check: fmt vet test bce

# bce asserts the SIMD-shaped kernels compile with zero bounds checks in
# their inner loops: `ssa/check_bce` prints one "Found IsInBounds" line
# per surviving check, and any line naming a pinned kernel file fails the
# target. (IsSliceInBounds from the setup reslices is fine — those run
# once per row/pass, not per point.) -a defeats the build cache so the
# diagnostic always runs.
bce:
	@out="$$($(GO) build -a -gcflags=-d=ssa/check_bce ./internal/multigrid/ ./internal/fft/ 2>&1 | grep -E 'stencil\.go|butterfly\.go' | grep 'Found IsInBounds' || true)"; \
	if [ -n "$$out" ]; then echo "bounds checks survive in pinned kernel files:"; echo "$$out"; exit 1; fi; \
	echo "bce: stencil.go and butterfly.go are bounds-check free"

# Race-check the concurrency-heavy packages (FFT worker pool and pooled
# scratch arenas, goroutine pool, collective I/O, parallel SCF assembly,
# atomic perf counters, pooled pw/pseudo scratch, checkpoint writes:
# concurrent collective checkpoint I/O during a trajectory, in both
# internal/qio and the root package, plus the job manager's worker
# pool / queue / SSE fan-out in internal/serve). -short skips the full
# SCF-convergence solves (minutes each under the race detector) while
# keeping every concurrency path: pool error/panic ordering, parallel
# SCFStep, collective and checkpoint writes, registry hammering,
# concurrent Cached3 lookups, job submission/cancellation races, and the
# warm-start cache's concurrent get/put path.
race: vet
	$(GO) test -race -short . ./internal/fft/... ./internal/pw/... ./internal/pseudo/... ./internal/bsd/... ./internal/qio/... ./internal/core/... ./internal/perf/... ./internal/md/... ./internal/serve/... ./internal/serve/lease/... ./internal/waitfor/... ./internal/cache/...

# serve-smoke drives the built qmdd daemon end to end over HTTP: start
# on a random port, submit a tiny 2-atom job and poll it to completion,
# resubmit it and assert the warm-start cache hit in /metrics (no SCF
# re-entry), cancel a third job mid-flight, assert the /metrics
# counters, then SIGTERM and check the graceful drain. CI runs this on
# every PR.
serve-smoke:
	$(GO) test -run TestQMDDSmoke -count=1 -v ./cmd/qmdd/

# cluster-smoke is the fault-injecting multi-node gate: 1 coordinator +
# 2 worker nodes as separate OS processes, a job array submitted through
# qmdctl, SIGKILL of the worker holding the longest job mid-trajectory,
# then assertions that the orphaned job is requeued after lease expiry
# and finished by the surviving node with energies bitwise identical to
# an uninterrupted standalone run — and that the dead worker's lease
# epoch is fenced with 409. CI runs this on every PR.
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count=1 -timeout 10m -v ./cmd/qmdd/

# exp-smoke is the experiment-harness gate: a 2×2 reactive validation
# matrix runs through a real standalone qmdd daemon as a job array, the
# first qmdexp campaign is SIGKILLed mid-flight, and the rerun must
# resume from the durable store (cached cells skipped, only the
# remainder resubmitted) and pass every validator — including the
# Arrhenius fit against the paper's 0.068 eV — plus a qmdctl results
# fetch of one array job. CI runs this on every PR.
exp-smoke:
	$(GO) test -run TestExpSmoke -count=1 -timeout 10m -v ./cmd/qmdexp/

bench: bench-fft
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-smoke compiles and runs every benchmark exactly once and pushes
# one benchmark through the cmd/benchjson pipe, so benchmark code and the
# BENCH_fft.json plumbing cannot rot silently. CI runs this on every PR.
bench-smoke: build
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
	$(GO) test -run '^$$' -bench 'Benchmark3DBatch' -benchtime 1x ./internal/fft/ | $(GO) run ./cmd/benchjson > /dev/null

# bench-fft runs the FFT/Hamiltonian hot-path benchmarks with allocation
# reporting and records the machine-readable results in BENCH_fft.json.
bench-fft:
	$(GO) test -run '^$$' -bench 'Benchmark(3DBatch|R3Batch|Plan3|RPlan3|Forward|HartreeFFT|ApplyAll$$|ApplyAllSeparate|ApplyAllBLAS)' -benchtime 2s ./internal/fft/ ./internal/pw/ | $(GO) run ./cmd/benchjson > BENCH_fft.json
	@cat BENCH_fft.json

# bench-multigrid runs the multigrid stencil kernels (vectorized vs the
# per-point wrapMul references), the transfer operators, and the V-cycle /
# full-solve paths, recording the results in BENCH_multigrid.json. The
# Smooth*/Residual* vs *Ref* ratios are the vectorization win.
bench-multigrid:
	$(GO) test -run '^$$' -bench 'Benchmark(Smooth|Residual|Restrict|Prolong|VCycle|Poisson)' -benchtime 2s ./internal/multigrid/ | $(GO) run ./cmd/benchjson > BENCH_multigrid.json
	@cat BENCH_multigrid.json

# bench-cache benchmarks the warm-start cache hot paths (put, exact and
# near lookup, entry codec) and records the machine-readable results in
# BENCH_cache.json.
bench-cache:
	$(GO) test -run '^$$' -bench 'Benchmark(Cache|EntryCodec)' -benchtime 2s ./internal/cache/ | $(GO) run ./cmd/benchjson > BENCH_cache.json
	@cat BENCH_cache.json

# bench-scale measures workspace-streaming memory scaling: one
# subprocess per decomposition (8 → 512 domains of the same system, so
# VmHWM isolates each point's true peak RSS), a c·dᵃ power-law fit over
# the sweep, and BENCH_scale.json as the machine-readable record. With
# bounded solver workspaces the fitted rssAlpha must stay ≈0 (memory
# follows the worker count, not the domain count).
bench-scale:
	$(GO) run ./cmd/scalebench -scale -scale-json BENCH_scale.json
	@cat BENCH_scale.json

# scale-smoke is the bounded-memory CI gate: a 512-domain LDC-DFT step
# streamed through 4 solver workspaces must finish under a hard RSS
# ceiling — a resident-per-domain regression (O(domains) memory) blows
# the ceiling and fails loudly. GOMEMLIMIT keeps the Go heap honest so
# lazily-collected garbage cannot hide under the ceiling.
scale-smoke:
	GOMEMLIMIT=400MiB LDC_SCALE_RSS_MAX_MB=512 $(GO) test -run TestScaleSmoke512 -count=1 -v ./internal/core/

# bench-serve benchmarks the coordinator's scheduling hot paths — the
# cost-aware queue pick, the submit→acquire→complete lease cycle, and
# renewal heartbeats under fleet-scale contention — and records the
# results in BENCH_serve.json.
bench-serve:
	$(GO) test -run '^$$' -bench 'Benchmark(QueueCostPick|LeaseAcquireComplete|LeaseRenew)' -benchtime 2s ./internal/serve/ | $(GO) run ./cmd/benchjson > BENCH_serve.json
	@cat BENCH_serve.json
