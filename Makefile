GO ?= go

.PHONY: build test vet fmt check race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the files) if anything is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# check is the pre-commit gate: formatting, static analysis, full tests.
check: fmt vet test

# Race-check the concurrency-heavy packages (FFT worker pool and pooled
# scratch arenas, goroutine pool, collective I/O, parallel SCF assembly,
# atomic perf counters, pooled pw/pseudo scratch). -short skips the
# full SCF-convergence solves (minutes each under the race detector)
# while keeping every concurrency path: pool error/panic ordering,
# parallel SCFStep, collective writes, registry hammering, concurrent
# Cached3 lookups.
race: vet
	$(GO) test -race -short ./internal/fft/... ./internal/pw/... ./internal/pseudo/... ./internal/bsd/... ./internal/qio/... ./internal/core/... ./internal/perf/...

bench: bench-fft
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-fft runs the FFT/Hamiltonian hot-path benchmarks with allocation
# reporting and records the machine-readable results in BENCH_fft.json.
bench-fft:
	$(GO) test -run '^$$' -bench 'Benchmark(3DBatch|Plan3|Forward|ApplyAll$$|ApplyAllBLAS)' -benchtime 2s ./internal/fft/ ./internal/pw/ | $(GO) run ./cmd/benchjson > BENCH_fft.json
	@cat BENCH_fft.json
