GO ?= go

.PHONY: build test vet race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrency-heavy packages (goroutine pool, collective
# I/O, parallel SCF assembly, atomic perf counters). -short skips the
# full SCF-convergence solves (minutes each under the race detector)
# while keeping every concurrency path: pool error/panic ordering,
# parallel SCFStep, collective writes, registry hammering.
race: vet
	$(GO) test -race -short ./internal/bsd/... ./internal/qio/... ./internal/core/... ./internal/perf/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
