// Package qmd is the public API of the LDC-DFT reproduction: quantum
// molecular dynamics with the lean divide-and-conquer density functional
// theory algorithm of Nomura et al., "Metascalable Quantum Molecular
// Dynamics Simulations of Hydrogen-on-Demand" (SC14).
//
// The package re-exports the building blocks a downstream user needs —
// atomic systems and builders, the LDC-DFT engine, the conventional
// O(N³) baseline, the MD integrator, the reactive hydrogen-on-demand
// surrogate, and the Blue Gene/Q performance model — and provides the
// high-level QMD driver RunQMD.
package qmd

import (
	"context"
	"fmt"

	"ldcdft/internal/atoms"
	"ldcdft/internal/cache"
	"ldcdft/internal/core"
	"ldcdft/internal/geom"
	"ldcdft/internal/grid"
	"ldcdft/internal/machine"
	"ldcdft/internal/md"
	"ldcdft/internal/reactive"
	"ldcdft/internal/scf"
)

// Re-exported atomic-structure types and builders.
type (
	// System is a periodic atomic configuration.
	System = atoms.System
	// Species is a chemical element with model pseudopotential data.
	Species = atoms.Species
	// Atom is one atom of a System.
	Atom = atoms.Atom
	// Vec3 is a 3-vector in Bohr.
	Vec3 = geom.Vec3
	// Cell is a periodic cubic cell.
	Cell = geom.Cell
)

// Predefined species.
var (
	Hydrogen = atoms.Hydrogen
	Oxygen   = atoms.Oxygen
	Lithium  = atoms.Lithium
	Aluminum = atoms.Aluminum
	Silicon  = atoms.Silicon
	Carbon   = atoms.Carbon
	Cadmium  = atoms.Cadmium
	Selenium = atoms.Selenium
)

// BuildSiC builds an n×n×n 3C-SiC supercell (8n³ atoms) — the
// weak-scaling workload of the paper's §5.1.
func BuildSiC(n int) *System { return atoms.BuildSiC(n) }

// LDC-DFT engine (the paper's primary contribution).
type (
	// LDCConfig configures an LDC-DFT calculation.
	LDCConfig = core.Config
	// LDCEngine is a live LDC-DFT calculation.
	LDCEngine = core.Engine
	// LDCMode selects LDC (boundary potential on) or original DC.
	LDCMode = core.Mode
	// SolveResult is the outcome of an SCF solve.
	SolveResult = core.SolveResult
)

// Boundary-condition modes.
const (
	ModeLDC = core.ModeLDC
	ModeDC  = core.ModeDC
)

// NewLDCEngine builds an LDC-DFT engine for the system.
func NewLDCEngine(sys *System, cfg LDCConfig) (*LDCEngine, error) {
	return core.NewEngine(sys, cfg)
}

// SolveConventional runs the O(N³) plane-wave DFT baseline (§5.5
// verification and §5.2 crossover baseline).
func SolveConventional(sys *System, cfg scf.Config) (*scf.Result, error) {
	return scf.Solve(sys, cfg)
}

// ConventionalConfig is the configuration of the O(N³) baseline.
type ConventionalConfig = scf.Config

// Molecular dynamics.
type (
	// Integrator advances a System with velocity Verlet.
	Integrator = md.Integrator
	// ForceField supplies energies and forces to the integrator.
	ForceField = md.ForceField
)

// NewIntegrator wraps a force field with the default (paper) time step
// of 0.242 fs when dtFs is 0.
func NewIntegrator(ff ForceField, dtFs float64) *Integrator {
	return md.NewIntegrator(ff, dtFs)
}

// NewReactiveField returns the calibrated reactive LiAl-water surrogate
// force field of the hydrogen-on-demand application (§6).
func NewReactiveField() ForceField { return reactive.NewField() }

// BlueGeneQ returns the modelled Blue Gene/Q (Mira) machine.
func BlueGeneQ() *machine.Machine { return machine.BlueGeneQ() }

// DFTForceField adapts the LDC-DFT engine to the MD integrator: each
// force evaluation rebuilds the domain decomposition for the moved atoms
// and warm-starts the SCF from the previous step's converged density.
type DFTForceField struct {
	Cfg LDCConfig

	// Ctx, when non-nil, cancels the SCF loop between iterations — a
	// cancelled force evaluation returns promptly with an error wrapping
	// the context's cancellation cause (see core.Engine.SolveCtx).
	Ctx context.Context

	// Cache, when non-nil, is consulted before every SCF solve: an exact
	// hit returns the stored energy/forces/density without solving, and a
	// near miss seeds the SCF from the nearest cached density when no
	// previous-step density is available. Every completed solve is stored
	// back (best-effort — a cache write failure never fails the solve).
	Cache *cache.Cache

	prevRho *grid.Field
	// LastSCFIters reports the SCF iterations of the latest evaluation
	// (0 when an exact cache hit skipped the solve).
	LastSCFIters int
	// LastEngine exposes the most recent engine (density, μ, …); nil when
	// an exact cache hit skipped the engine build.
	LastEngine *LDCEngine
	// LastCacheTier reports how the cache served the latest evaluation
	// (cache.TierMiss when no cache is configured).
	LastCacheTier cache.Tier

	cfgTag    string
	seedIters int // stored cost of the near-miss seed, for savings accounting
}

// tag returns the cache configuration tag: every physics-relevant Config
// field, excluding scheduling-only Workers, so runs that differ only in
// parallelism share cache entries.
func (f *DFTForceField) tag() string {
	if f.cfgTag == "" {
		c := f.Cfg
		f.cfgTag = fmt.Sprintf("ldc1|g%d d%d b%d e%g m%d x%g kt%g mix%g and%t pul%t scf%d et%g dt%g ei%d bb%t s%d",
			c.GridN, c.DomainsPerAxis, c.BufN, c.Ecut, c.Mode, c.Xi, c.KT,
			c.MixAlpha, c.Anderson, c.Pulay, c.MaxSCF, c.EnergyTol, c.DensityTol,
			c.EigenIters, c.BandByBand, c.Seed)
	}
	return f.cfgTag
}

// Compute implements ForceField.
func (f *DFTForceField) Compute(sys *System) (float64, []Vec3, error) {
	f.LastCacheTier = cache.TierMiss
	if f.Cache != nil {
		// A near-miss seed is only worth decoding when there is no
		// previous-step density — mid-trajectory the integrator's own
		// density is the better (and free) warm start.
		res, tier := f.Cache.Lookup(sys, f.tag(), f.prevRho == nil)
		f.LastCacheTier = tier
		switch tier {
		case cache.TierExact:
			f.prevRho = res.Rho
			f.LastSCFIters = 0
			f.releaseEngine()
			return res.EnergyHa, res.Forces, nil
		case cache.TierNear:
			f.prevRho = res.Rho
			f.seedIters = res.SCFIterations
		}
	}
	eng, err := core.NewEngine(sys, f.Cfg)
	if err != nil {
		return 0, nil, fmt.Errorf("qmd: engine rebuild: %w", err)
	}
	if f.prevRho != nil {
		if err := eng.SetDensity(f.prevRho); err != nil {
			eng.Close()
			return 0, nil, err
		}
	}
	ctx := f.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := eng.SolveCtx(ctx)
	if err != nil {
		eng.Close()
		return 0, nil, fmt.Errorf("qmd: SCF: %w", err)
	}
	f.prevRho = eng.ExportDensity()
	f.LastSCFIters = res.Iterations
	// The engine being replaced releases its wave-function store now
	// (deterministically freeing spill files / psi memory) rather than at
	// some future GC; the fresh engine stays open for post-run analysis
	// (DOS, frontier orbitals) until the next evaluation or Close.
	f.releaseEngine()
	f.LastEngine = eng
	forces, err := eng.Forces()
	if err != nil {
		return 0, nil, err
	}
	if f.Cache != nil {
		f.Cache.Put(sys, f.tag(), &cache.Result{
			EnergyHa:      res.Energy,
			Forces:        forces,
			SCFIterations: res.Iterations,
			Rho:           f.prevRho,
		})
		if f.seedIters > 0 {
			f.Cache.AddIterationsSaved(int64(f.seedIters - res.Iterations))
			f.seedIters = 0
		}
	}
	return res.Energy, forces, nil
}

// releaseEngine closes and forgets the retained engine, if any.
func (f *DFTForceField) releaseEngine() {
	if f.LastEngine != nil {
		f.LastEngine.Close()
		f.LastEngine = nil
	}
}

// Close releases the retained engine's wave-function store (spill files
// or psi memory). Call when done with post-run analysis on LastEngine;
// the force field remains usable — the next Compute builds a fresh
// engine.
func (f *DFTForceField) Close() error {
	f.releaseEngine()
	return nil
}

// Density returns the converged density of the most recent force
// evaluation (nil before the first) — the SCF warm start a checkpoint
// must capture.
func (f *DFTForceField) Density() *grid.Field { return f.prevRho }

// SetDensity installs a warm-start density for the next force
// evaluation, e.g. the density grid restored from a checkpoint.
func (f *DFTForceField) SetDensity(rho *grid.Field) { f.prevRho = rho }

// QMDResult summarizes a quantum MD trajectory.
type QMDResult struct {
	Steps         int
	SCFIterations int // total across steps (the paper counts 129,208 for its production run)
	Energies      []float64
	Temperatures  []float64
	FinalSystem   *System
}

// RunQMD runs an LDC-DFT quantum MD trajectory: the Fig. 2 SCF loop
// inside a velocity-Verlet loop.
func RunQMD(sys *System, cfg LDCConfig, steps int, dtFs float64) (*QMDResult, error) {
	return RunQMDOpts(sys, cfg, steps, dtFs, QMDOptions{})
}
